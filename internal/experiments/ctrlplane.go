package experiments

import (
	"fmt"

	"exist/internal/cluster"
	"exist/internal/coverage"
	"exist/internal/faults"
	"exist/internal/metrics"
	"exist/internal/parallel"
	"exist/internal/simtime"
	"exist/internal/tabular"
	"exist/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ctrlplane",
		Title: "Sharded control plane: reconcile throughput and latency curves to 100k nodes",
		Paper: "scale-out extension: shard the API server and range-lease the shards across replicas; throughput, Pending→Running latency, and per-request management CPU at 10k/30k/100k lite nodes",
		Run:   runCtrlPlaneExperiment,
	})
}

// ctrlCell is one point of the shard×replica×fleet matrix.
type ctrlCell struct {
	name     string
	nodes    int
	replicas int
	shards   int
	reqN     int
	fc       *faults.Config // nil: fault-free throughput cell
}

// ctrlOutcome is one cell's scorecard.
type ctrlOutcome struct {
	requests  int
	terminal  int
	completed int
	degraded  int

	p50Ms       float64 // Pending→Running latency percentiles
	p99Ms       float64
	makespanS   float64 // filing of the first request to the last terminal phase
	reqPerSec   float64 // terminal requests per makespan second
	syncs       int64
	syncsPerSec float64 // reconcile throughput over the makespan
	qMean       float64 // mean sampled aggregate work-queue depth
	qMax        int     // max sampled aggregate work-queue depth
	cpuPerReq   float64 // management CPU per filed request (seconds)
	avail       float64 // mean per-shard leader-lease availability
	rebalances  int     // shard ownership handovers after first election
	relists     int64
	readoptMs   float64
	maxOwners   int // max lease-valid owners ever sampled on one shard
	leaves      int64
	joins       int64
	dupKeys     int
	unacct      int
}

// rxs renders a replicas×shards configuration label.
func (cc ctrlCell) rxs() string { return fmt.Sprintf("r%d s%d", cc.replicas, cc.shards) }

// runCtrlCell drives one lite fleet through a burst of striped requests
// and scores throughput, latency, and management cost.
func runCtrlCell(cfg Config, cell ctrlCell) (ctrlOutcome, error) {
	ccfg := cluster.DefaultConfig()
	ccfg.Lite = true
	ccfg.Nodes = cell.nodes
	ccfg.CoresPerNode = 4
	ccfg.Seed = cfg.Seed
	ccfg.Replicas = cell.replicas
	ccfg.Shards = cell.shards
	if cell.fc != nil {
		ccfg.Faults = faults.New(*cell.fc)
		ccfg.RequestDeadline = 30 * simtime.Second
	}
	c := cluster.New(ccfg)
	agent, err := workload.ByName("Agent")
	if err != nil {
		return ctrlOutcome{}, err
	}
	if err := c.Deploy(agent, nil, workload.InstallOpts{}); err != nil {
		return ctrlOutcome{}, err
	}

	// Pending→Running latency probe: record each request's first Running
	// transition. The watcher observes phase changes only — it never
	// feeds back into the run.
	runningAt := make(map[string]simtime.Time, cell.reqN)
	c.API.Watch(func(r *cluster.TraceRequest) {
		if r.Phase == cluster.PhaseRunning {
			if _, ok := runningAt[r.Name]; !ok {
				runningAt[r.Name] = c.Eng.Now()
			}
		}
	})

	// File the whole request burst at a 10 µs stagger — a mass rollout
	// hitting the API server all at once. Each request traces an 8-node
	// stripe, stripes tiling the fleet. Filing starts after a 2 s
	// pre-roll so shard ownership has converged to the home assignment
	// and the cells measure the steady-state protocol, not startup
	// handbacks. The burst outruns one owner's drain rate, so the
	// single-shard queue builds; sharded owners drain it concurrently.
	const stripe = 8
	const stagger = 10 * simtime.Microsecond
	const fileStart = simtime.Time(2 * simtime.Second)
	filedAt := make(map[string]simtime.Time, cell.reqN)
	var reqs []*cluster.TraceRequest
	for i := 0; i < cell.reqN; i++ {
		name := fmt.Sprintf("cp-%05d", i)
		names := make([]string, 0, stripe)
		start := (i * stripe) % cell.nodes
		for j := 0; j < stripe; j++ {
			names = append(names, fmt.Sprintf("node-%d", (start+j)%cell.nodes))
		}
		at := fileStart + simtime.Time(i)*simtime.Time(stagger)
		c.Eng.Schedule(at, func(now simtime.Time) {
			r, err := c.Request(name, cluster.TraceRequestSpec{
				App:     "Agent",
				Purpose: coverage.PurposeAnomaly,
				Nodes:   names,
				Period:  400 * simtime.Millisecond,
			})
			if err == nil {
				reqs = append(reqs, r)
				filedAt[name] = now
			}
		})
	}

	// Samplers: aggregate queue depth and per-shard owner count every
	// 20 ms until every request is terminal.
	out := ctrlOutcome{}
	var qSamples []float64
	done := false
	var sample func(now simtime.Time)
	sample = func(now simtime.Time) {
		depth := 0
		for _, ct := range c.Controllers {
			depth += ct.QueueDepth()
		}
		qSamples = append(qSamples, float64(depth))
		if depth > out.qMax {
			out.qMax = depth
		}
		for s := 0; s < c.API.Shards(); s++ {
			if n := c.ActiveOwnersShard(s, now); n > out.maxOwners {
				out.maxOwners = n
			}
		}
		if !done {
			c.Eng.AfterDetached(20*simtime.Millisecond, sample)
		}
	}
	c.Eng.Schedule(fileStart+simtime.Time(20*simtime.Millisecond), sample)

	// Run in 250 ms steps until the burst fully drains (bounded at 90 s);
	// the stop test reads sim state at fixed virtual times, so the
	// makespan is deterministic at any -jobs value.
	step := 250 * simtime.Millisecond
	maxT := simtime.Time(90 * simtime.Second)
	var end simtime.Time
	for end = fileStart + simtime.Time(step); ; end += simtime.Time(step) {
		c.Run(end)
		terminal := 0
		for _, r := range reqs {
			if r.Phase.Terminal() {
				terminal++
			}
		}
		if (len(reqs) == cell.reqN && terminal == len(reqs)) || end >= maxT {
			done = true
			break
		}
	}

	var lat []float64
	seen := make(map[string]bool)
	for _, r := range reqs {
		if r.Phase.Terminal() {
			out.terminal++
		}
		switch r.Phase {
		case cluster.PhaseCompleted:
			out.completed++
		case cluster.PhaseDegraded:
			out.degraded++
		}
		if at, ok := runningAt[r.Name]; ok {
			lat = append(lat, (at-filedAt[r.Name]).Seconds()*1e3)
		}
		for _, k := range r.SessionKeys {
			if seen[k] {
				out.dupKeys++
			}
			seen[k] = true
		}
		if r.Planned > 0 && !expiredByDeadline(r) {
			if diff := r.Planned - len(r.SessionKeys) - r.Lost; diff > 0 {
				out.unacct += diff
			}
		}
	}
	out.requests = len(reqs)
	out.p50Ms = metrics.Percentile(lat, 50)
	out.p99Ms = metrics.Percentile(lat, 99)
	out.makespanS = (end - fileStart).Seconds()
	if out.makespanS > 0 {
		out.reqPerSec = float64(out.terminal) / out.makespanS
		out.syncsPerSec = float64(c.Mgmt.Syncs) / out.makespanS
	}
	out.syncs = c.Mgmt.Syncs
	out.qMean = metrics.Mean(qSamples)
	if out.requests > 0 {
		out.cpuPerReq = c.Mgmt.CPUSeconds / float64(out.requests)
	}
	out.avail, _ = c.Leases.Availability(c.Eng.Now().Seconds())
	out.rebalances = c.ShardRebalances()
	out.relists = c.Mgmt.Relists
	out.readoptMs = metrics.Mean(c.Readopts)
	if c.Cfg.Faults != nil {
		fs := c.Cfg.Faults.Stats()
		out.leaves = fs.Leaves
		out.joins = fs.Joins
	}
	return out, nil
}

// ctrlCells builds the cell matrix: a replicas×shards grid at the base
// fleet, scaling cells up the fleet axis, and chaos cells that force
// shard rebalances with controller crashes and node churn.
func ctrlCells(seed uint64, quick bool) []ctrlCell {
	reqFor := func(nodes int) int { return nodes / 4 }
	churn := func(off uint64) *faults.Config {
		return &faults.Config{
			Seed:              seed + off,
			CtrlCrashMTBF:     2 * simtime.Second,
			CtrlCrashDowntime: 500 * simtime.Millisecond,
			ChurnMTBF:         240 * simtime.Second,
			ChurnDownMean:     1 * simtime.Second,
		}
	}
	if quick {
		n := 2000
		return []ctrlCell{
			{name: "grid", nodes: n, replicas: 1, shards: 1, reqN: reqFor(n)},
			{name: "grid", nodes: n, replicas: 3, shards: 1, reqN: reqFor(n)},
			{name: "grid", nodes: n, replicas: 3, shards: 8, reqN: reqFor(n)},
			{name: "churn", nodes: n, replicas: 3, shards: 8, reqN: reqFor(n), fc: churn(41)},
		}
	}
	base := 10000
	cells := []ctrlCell{}
	for _, r := range []int{1, 3, 5} {
		for _, s := range []int{1, 8, 64} {
			cells = append(cells, ctrlCell{name: "grid", nodes: base, replicas: r, shards: s, reqN: reqFor(base)})
		}
	}
	cells = append(cells,
		ctrlCell{name: "scale", nodes: 30000, replicas: 3, shards: 1, reqN: reqFor(30000)},
		ctrlCell{name: "scale", nodes: 30000, replicas: 3, shards: 8, reqN: reqFor(30000)},
		ctrlCell{name: "scale", nodes: 100000, replicas: 3, shards: 1, reqN: reqFor(100000)},
		ctrlCell{name: "scale", nodes: 100000, replicas: 3, shards: 8, reqN: reqFor(100000)},
		ctrlCell{name: "scale", nodes: 100000, replicas: 5, shards: 64, reqN: reqFor(100000)},
		ctrlCell{name: "churn", nodes: base, replicas: 3, shards: 1, reqN: reqFor(base), fc: churn(40)},
		ctrlCell{name: "churn", nodes: base, replicas: 3, shards: 8, reqN: reqFor(base), fc: churn(41)},
	)
	return cells
}

func runCtrlPlaneExperiment(cfg Config) (*Result, error) {
	res := &Result{ID: "ctrlplane"}
	cells := ctrlCells(cfg.Seed, cfg.Quick)
	outs, err := parallel.MapErr(len(cells), cfg.Jobs, func(i int) (ctrlOutcome, error) {
		return runCtrlCell(cfg, cells[i])
	})
	if err != nil {
		return nil, err
	}
	byCfg := func(name string, nodes, r, s int) *ctrlOutcome {
		for i, cc := range cells {
			if cc.name == name && cc.nodes == nodes && cc.replicas == r && cc.shards == s {
				return &outs[i]
			}
		}
		return nil
	}

	grid := &tabular.Table{
		Title: fmt.Sprintf("Replica×shard grid (%d lite nodes, %d requests filed in one burst)",
			cells[0].nodes, cells[0].reqN),
		Header: []string{"config", "terminal", "p50 ms", "p99 ms", "makespan s", "syncs/s",
			"queue mean/max", "cpu µs/req", "owners>1", "dup/unacct"},
	}
	scale := &tabular.Table{
		Title: "Scaling curves: fleet size up, single shard vs sharded",
		Header: []string{"nodes", "config", "requests", "p50 ms", "p99 ms", "makespan s",
			"syncs/s", "queue max", "cpu µs/req"},
	}
	chaosT := &tabular.Table{
		Title: "Forced shard rebalances: controller crashes + node churn (graceful leave/rejoin)",
		Header: []string{"config", "terminal", "completed", "degraded", "availability",
			"rebalances", "relists", "readopt ms", "leaves/joins", "dup/unacct"},
	}
	for i, cc := range cells {
		o := outs[i]
		tag := fmt.Sprintf("%s_r%d_s%d_%dk", cc.name, cc.replicas, cc.shards, cc.nodes/1000)
		switch cc.name {
		case "grid":
			grid.AddRow(cc.rxs(),
				fmt.Sprintf("%d/%d", o.terminal, o.requests),
				fmt.Sprintf("%.1f", o.p50Ms),
				fmt.Sprintf("%.1f", o.p99Ms),
				fmt.Sprintf("%.2f", o.makespanS),
				fmt.Sprintf("%.0f", o.syncsPerSec),
				fmt.Sprintf("%.0f/%d", o.qMean, o.qMax),
				fmt.Sprintf("%.1f", o.cpuPerReq*1e6),
				fmt.Sprintf("%d", boolToInt(o.maxOwners > 1)),
				fmt.Sprintf("%d/%d", o.dupKeys, o.unacct))
		case "scale":
			scale.AddRow(fmt.Sprintf("%d", cc.nodes), cc.rxs(),
				fmt.Sprintf("%d", o.requests),
				fmt.Sprintf("%.1f", o.p50Ms),
				fmt.Sprintf("%.1f", o.p99Ms),
				fmt.Sprintf("%.2f", o.makespanS),
				fmt.Sprintf("%.0f", o.syncsPerSec),
				fmt.Sprintf("%d", o.qMax),
				fmt.Sprintf("%.1f", o.cpuPerReq*1e6))
		case "churn":
			chaosT.AddRow(cc.rxs(),
				fmt.Sprintf("%d/%d", o.terminal, o.requests),
				fmt.Sprintf("%d", o.completed),
				fmt.Sprintf("%d", o.degraded),
				fmt.Sprintf("%.4f", o.avail),
				fmt.Sprintf("%d", o.rebalances),
				fmt.Sprintf("%d", o.relists),
				fmt.Sprintf("%.1f", o.readoptMs),
				fmt.Sprintf("%d/%d", o.leaves, o.joins),
				fmt.Sprintf("%d/%d", o.dupKeys, o.unacct))
		}
		res.Metric("p99_ms_"+tag, o.p99Ms)
		res.Metric("req_per_s_"+tag, o.reqPerSec)
		res.Metric("cpu_us_per_req_"+tag, o.cpuPerReq*1e6)
		if cc.name == "churn" {
			res.Metric("rebalances_"+tag, float64(o.rebalances))
			res.Metric("dup_sessions_"+tag, float64(o.dupKeys))
			res.Metric("unaccounted_"+tag, float64(o.unacct))
			res.Metric("availability_"+tag, o.avail)
		}
	}

	// Headline deltas at the base fleet: sharding the store and the work
	// across replicas must cut management CPU per request and tail
	// latency, not just move them around.
	baseN := cells[0].nodes
	if s1, s8 := byCfg("grid", baseN, 3, 1), byCfg("grid", baseN, 3, 8); s1 != nil && s8 != nil && s1.cpuPerReq > 0 {
		drop := 1 - s8.cpuPerReq/s1.cpuPerReq
		res.Metric("cpu_drop_r3_s8_vs_s1", drop)
		if s8.p99Ms > 0 {
			res.Metric("p99_speedup_r3_s8_vs_s1", s1.p99Ms/s8.p99Ms)
		}
		grid.Notes = append(grid.Notes,
			fmt.Sprintf("management CPU per request: %.1f µs (s1) → %.1f µs (s8) at r3: %.0f%% drop",
				s1.cpuPerReq*1e6, s8.cpuPerReq*1e6, drop*100))
	}
	grid.Notes = append(grid.Notes,
		"store writes pay a scan of the owning shard's live objects; sharding shrinks the scan (DESIGN.md §15)",
		"with one shard extra replicas add no throughput: one range lease means one drain; shards make replicas count",
		"owners>1: 1 if two lease-valid owners were ever sampled on one shard; safety demands 0")
	scale.Notes = append(scale.Notes,
		"requests scale with the fleet (fleet/4, 8-node stripes), so the burst stresses the store at every size")
	chaosT.Notes = append(chaosT.Notes,
		"rebalances: shard ownership handovers after first election (crash failovers + home-shard handbacks)",
		"churn: nodes cordon, drain in-flight sessions, leave, and rejoin with a fresh lease (faults.NextChurn)",
		"dup/unacct: duplicated session uploads / slots lost without accounting; both must be 0")
	res.Tables = append(res.Tables, grid, scale, chaosT)
	return res, nil
}

// boolToInt is 1 for true, 0 for false.
func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
