package experiments

import (
	"fmt"

	"exist/internal/cluster"
	"exist/internal/coverage"
	"exist/internal/faults"
	"exist/internal/metrics"
	"exist/internal/simtime"
	"exist/internal/tabular"
	"exist/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "chaos",
		Title: "Chaos: replicated control plane under crash/partition/gray-failure storms at fleet scale",
		Paper: "robustness extension: 3 controller replicas over a 10k-node lite fleet; availability, failover, and coverage retained under injected storms",
		Run:   runChaosExperiment,
	})
}

// chaosOutcome is one scenario's scorecard.
type chaosOutcome struct {
	requests  int
	terminal  int
	completed int
	degraded  int
	failed    int
	shed      int64
	coverage  float64 // mean CoverageFraction over filed requests

	availability float64
	gaps         int
	elections    int
	failovers    int
	readoptMs    float64 // mean time for a new leader to re-adopt all in-flight requests
	maxLeaders   int     // max concurrently active leaders ever sampled

	dupKeys     int // duplicated session uploads (must be 0)
	unaccounted int // planned slots neither landed nor given up (must be 0 outside deadline expiry)

	nodeCrashes int64
	ctrlCrashes int64
	partitions  int64
	grayDelays  int64
	falseSusp   int64
	syncs       int64
	requeues    int64
	conflicts   int64
	fenced      int64
	resamples   int64
}

// chaosScenario names one fault shape; a nil config is the no-fault
// baseline every other scenario is scored against.
type chaosScenario struct {
	name string
	fc   *faults.Config
}

// chaosScenarios builds the storm matrix for a seed.
func chaosScenarios(seed uint64, quick bool) []chaosScenario {
	ctrl := &faults.Config{Seed: seed + 31, CtrlCrashMTBF: 3 * simtime.Second, CtrlCrashDowntime: 600 * simtime.Millisecond}
	part := &faults.Config{Seed: seed + 32, PartitionMTBF: 2 * simtime.Second, PartitionMeanDur: 400 * simtime.Millisecond}
	gray := &faults.Config{Seed: seed + 33, GrayNodeProb: 0.15, GrayDelayMean: 400 * simtime.Millisecond, ClockSkewMax: 50 * simtime.Millisecond}
	storm := &faults.Config{
		Seed:              seed + 34,
		CrashMTBF:         60 * simtime.Second,
		CrashDowntime:     1 * simtime.Second,
		CtrlCrashMTBF:     3 * simtime.Second,
		CtrlCrashDowntime: 600 * simtime.Millisecond,
		PartitionMTBF:     2 * simtime.Second,
		PartitionMeanDur:  400 * simtime.Millisecond,
		GrayNodeProb:      0.15,
		GrayDelayMean:     400 * simtime.Millisecond,
		ClockSkewMax:      50 * simtime.Millisecond,
		SessionLossProb:   0.03,
		PutFailProb:       0.05,
	}
	if quick {
		return []chaosScenario{
			{"no-fault", nil},
			{"ctrl-crash", ctrl},
			{"full storm", storm},
		}
	}
	return []chaosScenario{
		{"no-fault", nil},
		{"ctrl-crash", ctrl},
		{"partition", part},
		{"gray+skew", gray},
		{"full storm", storm},
	}
}

// runChaosScenario drives one replicated lite fleet through a request
// stream under the given fault shape and scores the run.
func runChaosScenario(cfg Config, nodes int, fc *faults.Config) (chaosOutcome, error) {
	ccfg := cluster.DefaultConfig()
	ccfg.Lite = true
	ccfg.Nodes = nodes
	ccfg.CoresPerNode = 4
	ccfg.Seed = cfg.Seed
	ccfg.Replicas = 3
	if fc != nil {
		ccfg.Faults = faults.New(*fc)
	}
	c := cluster.New(ccfg)
	agent, err := workload.ByName("Agent")
	if err != nil {
		return chaosOutcome{}, err
	}
	if err := c.Deploy(agent, nil, workload.InstallOpts{}); err != nil {
		return chaosOutcome{}, err
	}

	// Each request traces a 24-node stripe of the fleet; stripes stride
	// across it so failures anywhere land on someone's request.
	reqN := 60
	stripe := 24
	if cfg.Quick {
		reqN = 16
	}
	var reqs []*cluster.TraceRequest
	for i := 0; i < reqN; i++ {
		name := fmt.Sprintf("trace-%03d", i)
		names := make([]string, 0, stripe)
		start := (i * 397) % nodes
		for j := 0; j < stripe; j++ {
			names = append(names, fmt.Sprintf("node-%d", (start+j)%nodes))
		}
		at := simtime.Time(i) * simtime.Time(300*simtime.Millisecond)
		c.Eng.Schedule(at, func(simtime.Time) {
			r, err := c.Request(name, cluster.TraceRequestSpec{
				App:     "Agent",
				Purpose: coverage.PurposeAnomaly,
				Nodes:   names,
				Period:  500 * simtime.Millisecond,
			})
			if err == nil {
				reqs = append(reqs, r)
			}
		})
	}

	// Safety probe: sample the active-leader count through the run.
	out := chaosOutcome{}
	var sample func(now simtime.Time)
	horizon := simtime.Time(reqN)*simtime.Time(300*simtime.Millisecond) + 15*simtime.Second
	sample = func(now simtime.Time) {
		if n := c.ActiveLeaders(now); n > out.maxLeaders {
			out.maxLeaders = n
		}
		if now < horizon {
			c.Eng.AfterDetached(10*simtime.Millisecond, sample)
		}
	}
	c.Eng.AfterDetached(10*simtime.Millisecond, sample)

	c.Run(horizon)

	out.requests = len(reqs)
	var covSum float64
	seen := make(map[string]bool)
	for _, r := range reqs {
		if r.Phase.Terminal() {
			out.terminal++
		}
		switch r.Phase {
		case cluster.PhaseCompleted:
			out.completed++
		case cluster.PhaseDegraded:
			out.degraded++
		case cluster.PhaseFailed:
			out.failed++
		}
		covSum += r.CoverageFraction()
		for _, k := range r.SessionKeys {
			if seen[k] {
				out.dupKeys++
			}
			seen[k] = true
		}
		// Slot accounting: outside deadline expiry (which abandons
		// in-flight slots by design) every planned slot must be landed
		// or given up — nothing silently lost.
		if r.Planned > 0 && !expiredByDeadline(r) {
			if diff := r.Planned - len(r.SessionKeys) - r.Lost; diff > 0 {
				out.unaccounted += diff
			}
		}
	}
	if len(reqs) > 0 {
		out.coverage = covSum / float64(len(reqs))
	}
	out.availability, out.gaps = c.Leases.Availability(c.Eng.Now().Seconds())
	out.elections = c.Leases.Elections()
	out.failovers = c.Leases.Failovers()
	out.readoptMs = metrics.Mean(c.Readopts)
	out.shed = c.Mgmt.Shed
	out.syncs = c.Mgmt.Syncs
	out.requeues = c.Mgmt.Requeues
	out.conflicts = c.Mgmt.Conflicts
	out.fenced = c.Mgmt.FencedOps
	out.falseSusp = c.Mgmt.FalseSuspicions
	out.resamples = c.Mgmt.Resamples
	fs := c.Cfg.Faults.Stats()
	out.nodeCrashes = fs.Crashes
	out.ctrlCrashes = fs.CtrlCrashes
	out.partitions = fs.Partitions
	out.grayDelays = fs.GrayDelays
	return out, nil
}

// expiredByDeadline reports whether the request was forced terminal by
// its deadline (abandoning in-flight slots).
func expiredByDeadline(r *cluster.TraceRequest) bool {
	return len(r.Message) >= 17 && r.Message[:17] == "deadline exceeded"
}

func runChaosExperiment(cfg Config) (*Result, error) {
	res := &Result{ID: "chaos"}
	nodes := 10000
	if cfg.Quick {
		nodes = 1500
	}
	scenarios := chaosScenarios(cfg.Seed, cfg.Quick)

	t1 := &tabular.Table{
		Title: fmt.Sprintf("Replicated control plane (3 replicas, %d lite nodes): chaos scenario comparison", nodes),
		Header: []string{"scenario", "terminal", "completed", "degraded", "availability", "failovers",
			"readopt ms", "max leaders", "coverage", "retained", "dup/unacct"},
	}
	var baseline float64
	for _, sc := range scenarios {
		out, err := runChaosScenario(cfg, nodes, sc.fc)
		if err != nil {
			return nil, err
		}
		if sc.fc == nil {
			baseline = out.coverage
		}
		retained := 1.0
		if baseline > 0 {
			retained = out.coverage / baseline
		}
		t1.AddRow(
			sc.name,
			fmt.Sprintf("%d/%d", out.terminal, out.requests),
			fmt.Sprintf("%d", out.completed),
			fmt.Sprintf("%d", out.degraded),
			fmt.Sprintf("%.4f", out.availability),
			fmt.Sprintf("%d", out.failovers),
			fmt.Sprintf("%.1f", out.readoptMs),
			fmt.Sprintf("%d", out.maxLeaders),
			fmt.Sprintf("%.3f", out.coverage),
			fmt.Sprintf("%.3f", retained),
			fmt.Sprintf("%d/%d", out.dupKeys, out.unaccounted),
		)
		tag := tagFor(sc.name)
		res.Metric("terminal_frac_"+tag, frac(out.terminal, out.requests))
		res.Metric("availability_"+tag, out.availability)
		res.Metric("coverage_retained_"+tag, retained)
		res.Metric("failovers_"+tag, float64(out.failovers))
		res.Metric("readopt_ms_"+tag, out.readoptMs)
		res.Metric("max_leaders_"+tag, float64(out.maxLeaders))
		res.Metric("dup_sessions_"+tag, float64(out.dupKeys))

		if sc.name == "full storm" {
			t2 := &tabular.Table{
				Title:  "Full-storm control-plane counters (the machinery holding the line)",
				Header: []string{"counter", "value"},
			}
			t2.AddRow("node crashes", fmt.Sprintf("%d", out.nodeCrashes))
			t2.AddRow("controller crashes", fmt.Sprintf("%d", out.ctrlCrashes))
			t2.AddRow("controller-store partitions", fmt.Sprintf("%d", out.partitions))
			t2.AddRow("gray heartbeat delays", fmt.Sprintf("%d", out.grayDelays))
			t2.AddRow("false suspicions (live node, lapsed lease)", fmt.Sprintf("%d", out.falseSusp))
			t2.AddRow("leader elections", fmt.Sprintf("%d", out.elections))
			t2.AddRow("leadership gaps", fmt.Sprintf("%d", out.gaps))
			t2.AddRow("work-queue syncs", fmt.Sprintf("%d", out.syncs))
			t2.AddRow("rate-limited requeues", fmt.Sprintf("%d", out.requeues))
			t2.AddRow("CAS conflicts", fmt.Sprintf("%d", out.conflicts))
			t2.AddRow("fenced stale-leader ops", fmt.Sprintf("%d", out.fenced))
			t2.AddRow("sessions re-sampled", fmt.Sprintf("%d", out.resamples))
			t2.AddRow("requests shed by admission", fmt.Sprintf("%d", out.shed))
			t2.Notes = append(t2.Notes,
				"every fault decision is seeded and keyed by stable identifiers: reruns inject the identical storm")
			res.Tables = append(res.Tables, t2)
		}
	}
	t1.Notes = append(t1.Notes,
		"availability: fraction of the run some controller held a valid leader lease",
		"readopt ms: mean time for a new leader to re-adopt every in-flight request after a failover",
		"max leaders: highest concurrently active (lease-valid) leader count ever sampled; safety demands 1",
		"dup/unacct: duplicated session uploads / planned slots lost without accounting; both must be 0",
		"retained: mean coverage fraction vs the no-fault baseline")
	res.Tables = append(res.Tables, t1)
	return res, nil
}

// tagFor turns a scenario name into a metric tag.
func tagFor(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
