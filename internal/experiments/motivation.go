package experiments

import (
	"fmt"

	"exist/internal/cpu"
	"exist/internal/metrics"
	"exist/internal/node"
	"exist/internal/service"
	"exist/internal/simtime"
	"exist/internal/tabular"
)

func init() {
	register(Experiment{
		ID:    "fig03a",
		Title: "Figure 3a: tracing overhead in shared scenarios",
		Paper: "sampling 4.3->4.4%, IPT 6.1->7.6% going exclusive->shared; innocent co-runner slows 2.1-3.1%",
		Run:   runFig03a,
	})
	register(Experiment{
		ID:    "fig03b",
		Title: "Figure 3b: E2E response-time slowdown under workload stress",
		Paper: "a ~2% single-service overhead exceeds 10% E2E tail degradation at high load",
		Run:   runFig03b,
	})
	register(Experiment{
		ID:    "fig04",
		Title: "Figure 4: software/hardware events with co-location and tracing",
		Paper: "context switches and kernel time grow sharply with co-location under tracing; LLC misses +1.3% only",
		Run:   runFig04,
	})
	register(Experiment{
		ID:    "fig05",
		Title: "Figure 5: isolating the multiplexed resource behind tracing overhead",
		Paper: "no single resource dominates: HT/core/LLC sharing add 1.4%/1.5%/1.0% tracing slowdown",
		Run:   runFig05,
	})
	register(Experiment{
		ID:    "fig08",
		Title: "Figure 8: context-switch period distributions",
		Paper: "50%/85%/98% of all switches within 0.01/0.1/1 ms; per-core and per-process curves shift right",
		Run:   runFig08,
	})
}

func runFig03a(cfg Config) (*Result, error) {
	a, ns, err := figureSpec("fig03a")
	if err != nil {
		return nil, err
	}
	dur := durQuick(cfg, 500*simtime.Millisecond, 2*simtime.Second)

	type setting struct {
		name   string
		shared bool
	}
	// measure runs A (optionally sharing cores with B) under a scheme and
	// returns both processes' cycle counts.
	measureAB := func(scheme SchemeKind, shared bool) (aCyc, bCyc int64, err error) {
		spec := ns
		spec.Dur = dur
		if !shared {
			spec.CoRunners = nil
		}
		r, err := measure(cfg, a, scheme, spec)
		if err != nil {
			return 0, 0, err
		}
		aCyc = r.Stats.Cycles
		if shared {
			for _, p := range r.Machine.Procs {
				if p.Name == "xz" {
					bCyc = p.Stats().Cycles
				}
			}
		}
		return aCyc, bCyc, nil
	}

	res := &Result{ID: "fig03a"}
	t := &tabular.Table{
		Title:  "Figure 3a: execution-time slowdown of profiling in exclusive vs shared pods",
		Header: []string{"setting", "Sampling F=4000", "Tracing w/ IPT"},
	}
	for _, s := range []setting{{"Exclusive Pod A w/ Profiling", false}, {"Shared Pod A w/ Profiling", true}} {
		baseA, _, err := measureAB(SchemeOracle, s.shared)
		if err != nil {
			return nil, err
		}
		samA, _, err := measureAB(SchemeStaSam, s.shared)
		if err != nil {
			return nil, err
		}
		iptA, _, err := measureAB(SchemeNHT, s.shared)
		if err != nil {
			return nil, err
		}
		sam := float64(baseA)/float64(samA) - 1
		ipt := float64(baseA)/float64(iptA) - 1
		t.AddRow(s.name, pct(sam), pct(ipt))
		if !s.shared {
			res.Metric("exclusive_ipt", ipt)
		} else {
			res.Metric("shared_ipt", ipt)
		}
	}
	// The innocent co-located pod.
	_, baseB, err := measureAB(SchemeOracle, true)
	if err != nil {
		return nil, err
	}
	_, samB, err := measureAB(SchemeStaSam, true)
	if err != nil {
		return nil, err
	}
	_, iptB, err := measureAB(SchemeNHT, true)
	if err != nil {
		return nil, err
	}
	samLoss := float64(baseB)/float64(samB) - 1
	iptLoss := float64(baseB)/float64(iptB) - 1
	t.AddRow("Shared Pod B w/o Profiling", pct(samLoss), pct(iptLoss))
	t.Notes = append(t.Notes,
		"paper: sampling 4.3/4.4/2.1%, IPT tracing 6.1/7.6/3.1% — overhead grows when shared and leaks to innocent pods")
	res.Metric("innocent_b_ipt", iptLoss)
	res.Tables = append(res.Tables, t)
	return res, nil
}

func runFig03b(cfg Config) (*Result, error) {
	res := &Result{ID: "fig03b"}
	t := &tabular.Table{
		Title:  "Figure 3b: E2E response-time slowdown from a ~2% single-service profiling overhead",
		Header: []string{"load", "p50", "p75", "p90", "p99", "p99.9"},
	}
	dur := durQuick(cfg, 4*simtime.Second, 20*simtime.Second)
	reps := 3
	if !cfg.Quick {
		reps = 8
	}
	loads := []float64{1e2, 1e3, 1e4, 1e5}
	// perf-record-like overhead on the traced service only (tier 1).
	ov := []service.Overhead{{Tier: 1, Frac: 0.02, SpikeProb: 0.02, Spike: 3 * simtime.Millisecond}}
	var worst float64
	for _, load := range loads {
		// Low loads need longer (virtual) windows for stable percentiles;
		// virtual time is nearly free when few events occur in it.
		d := dur
		if want := simtime.Duration(float64(minRequests(cfg)) / service.InstanceRate(load) * float64(simtime.Second)); want > d {
			d = want
		}
		base := avgSummariesRate(cfg, service.InstanceRate(load), d, reps, nil)
		with := avgSummariesRate(cfg, service.InstanceRate(load), d, reps, ov)
		slow := func(b, w float64) float64 {
			if b <= 0 {
				return 0
			}
			return w/b - 1
		}
		p999 := slow(base.P999, with.P999)
		if p999 > worst {
			worst = p999
		}
		t.AddRow(fmt.Sprintf("Load=%.0e", load),
			pct(slow(base.P50, with.P50)),
			pct(slow(base.P75, with.P75)),
			pct(slow(base.P90, with.P90)),
			pct(slow(base.P99, with.P99)),
			pct(p999))
	}
	t.Notes = append(t.Notes, "paper: degradation worsens with stress, tail latency beyond 10% at high load")
	res.Metric("worst_tail_slowdown", worst)
	res.Tables = append(res.Tables, t)
	return res, nil
}

// minRequests is the per-repetition sample floor for percentile stability.
func minRequests(cfg Config) int {
	if cfg.Quick {
		return 1500
	}
	return 5000
}

// avgSummaries averages open-loop percentile summaries over repetitions
// with distinct seeds; queueing-tail slowdowns are too noisy for
// single-run comparisons.
func avgSummariesRate(cfg Config, rate float64, dur simtime.Duration, reps int, ov []service.Overhead) metrics.Summary {
	var sum metrics.Summary
	for i := 0; i < reps; i++ {
		spec := service.ComposePostChain(cfg.Seed + 11 + uint64(i)*997)
		s := service.RunOpenLoop(spec, rate, dur, ov).Summary
		sum.P50 += s.P50 / float64(reps)
		sum.P75 += s.P75 / float64(reps)
		sum.P90 += s.P90 / float64(reps)
		sum.P99 += s.P99 / float64(reps)
		sum.P999 += s.P999 / float64(reps)
		sum.Mean += s.Mean / float64(reps)
		sum.N += s.N
	}
	return sum
}

func runFig04(cfg Config) (*Result, error) {
	a, ns, err := figureSpec("fig04")
	if err != nil {
		return nil, err
	}
	dur := durQuick(cfg, 500*simtime.Millisecond, 2*simtime.Second)

	// The document declares the full antagonist stack; rows take prefixes.
	scenarios := []struct {
		name string
		cos  int
	}{
		{"Exclusive A", 0},
		{"Shared A with B", 1},
		{"Shared A with B and C", 2},
	}
	res := &Result{ID: "fig04"}
	t := &tabular.Table{
		Title: "Figure 4: software and hardware events, with and without hardware tracing",
		Header: []string{"scenario", "tracing", "ctx switches", "migrations", "kernel ms",
			"branch miss (M)", "L1 miss (M)", "LLC miss (M)"},
	}
	var prevSwitches int64
	for _, sc := range scenarios {
		for _, scheme := range []SchemeKind{SchemeOracle, SchemeNHT} {
			spec := ns
			spec.Dur = dur
			spec.CoRunners = ns.CoRunners[:sc.cos]
			r, err := measure(cfg, a, scheme, spec)
			if err != nil {
				return nil, err
			}
			m := r.Machine
			interference := 1.0 + 0.15*float64(sc.cos)
			hw := a.ComputeHWEvents(r.Stats.Insns, interference, scheme == SchemeNHT, m.Cfg.Cost)
			label := "w/o"
			if scheme == SchemeNHT {
				label = "w/"
			}
			t.AddRowf(sc.name, label,
				m.Stats.Switches, m.Stats.Migrations,
				float64(m.TotalKernelNS())/1e6,
				float64(hw.BranchMisses)/1e6, float64(hw.L1Misses)/1e6, float64(hw.LLCMisses)/1e6)
			if scheme == SchemeOracle {
				prevSwitches = m.Stats.Switches
			} else if sc.name == "Shared A with B and C" {
				res.Metric("switches_ratio_traced", float64(m.Stats.Switches)/float64(max64(prevSwitches, 1)))
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: switches rise sharply with co-location; tracing raises kernel time; LLC misses rise only ~1.3% from tracing itself")
	res.Tables = append(res.Tables, t)
	return res, nil
}

func runFig05(cfg Config) (*Result, error) {
	ms, ns, err := figureSpec("fig05")
	if err != nil {
		return nil, err
	}
	dur := durQuick(cfg, 500*simtime.Millisecond, 2*simtime.Second)

	type arrangement struct {
		name    string
		kind    cpu.SharingKind
		ht      bool
		coCores []int
	}
	target := ns.TargetCores
	arrangements := []arrangement{
		{"Exclusive", cpu.ShareNone, false, nil},
		{"Share HT", cpu.ShareHT, true, []int{8, 9, 10, 11}}, // HT siblings of 0-3 on a 16-core HT machine
		{"Share Core", cpu.ShareCore, false, target},
		{"Share LLC", cpu.ShareLLC, false, []int{4, 5, 6, 7}},
	}
	res := &Result{ID: "fig05"}
	t := &tabular.Table{
		Title:  "Figure 5: MySQL-like throughput under resource sharing, with (X+T) and without tracing",
		Header: []string{"setting", "normalized thpt", "with tracing", "tracing slowdown"},
	}
	var exclusiveBase int64
	for _, ar := range arrangements {
		// The document declares the antagonist; each row re-pins it to the
		// resource under test (HT siblings, the app's cores, or LLC-only
		// neighbors) or drops it for the exclusive baseline.
		spec := ns
		spec.Dur = dur
		spec.HT = ar.ht
		if ar.coCores != nil {
			co := ns.CoRunners[0]
			co.Cores = ar.coCores
			spec.CoRunners = []node.CoRunner{co}
		} else {
			spec.CoRunners = nil
		}
		base, err := measure(cfg, ms, SchemeOracle, spec)
		if err != nil {
			return nil, err
		}
		traced, err := measure(cfg, ms, SchemeNHT, spec)
		if err != nil {
			return nil, err
		}
		if ar.kind == cpu.ShareNone {
			exclusiveBase = base.Stats.Cycles
		}
		norm := float64(base.Stats.Cycles) / float64(max64(exclusiveBase, 1))
		normT := float64(traced.Stats.Cycles) / float64(max64(exclusiveBase, 1))
		slow := float64(base.Stats.Cycles)/float64(traced.Stats.Cycles) - 1
		t.AddRow(ar.name, tabular.FormatFloat(norm), tabular.FormatFloat(normT), pct(slow))
		res.Metric("tracing_slowdown_"+ar.kind.String(), slow)
	}
	t.Notes = append(t.Notes,
		"paper: no single shared resource explains the overhead growth — HT/core/LLC contribute 1.4%/1.5%/1.0%")
	res.Tables = append(res.Tables, t)
	return res, nil
}

func runFig08(cfg Config) (*Result, error) {
	mc, ns, err := figureSpec("fig08")
	if err != nil {
		return nil, err
	}
	dur := durQuick(cfg, 1*simtime.Second, 5*simtime.Second)
	spec := ns
	spec.Dur = dur
	r, err := measure(cfg, mc, SchemeOracle, spec)
	if err != nil {
		return nil, err
	}
	st := r.Machine.Stats
	res := &Result{ID: "fig08"}
	t := &tabular.Table{
		Title:  "Figure 8: CDF of context-switch periods (fraction of periods <= x ms)",
		Header: []string{"series", "0.01ms", "0.1ms", "1ms", "10ms", "100ms", "1000ms", "samples"},
	}
	xs := []float64{0.01, 0.1, 1, 10, 100, 1000}
	series := []struct {
		name    string
		samples []float64
	}{
		{"All Context Switches", st.SwitchPeriodsAll},
		{"Grouped by Core", st.SwitchPeriodsByCore},
		{"Grouped by Process", st.SwitchPeriodsByProc},
	}
	for _, s := range series {
		pts := metrics.CDF(s.samples, xs)
		row := []string{s.name}
		for _, p := range pts {
			row = append(row, fmt.Sprintf("%.2f", p.F))
		}
		row = append(row, fmt.Sprintf("%d", len(s.samples)))
		t.AddRow(row...)
	}
	under1ms := metrics.CDF(st.SwitchPeriodsAll, []float64{1})[0].F
	res.Metric("all_under_1ms", under1ms)
	t.Notes = append(t.Notes,
		"paper: most cores/threads switch within 1 ms, so per-switch control costs 1000x more than per-second control",
		"per-core and per-process groupings shift right of the all-switches curve")
	res.Tables = append(res.Tables, t)
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
