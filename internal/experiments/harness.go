package experiments

import (
	"time"

	"exist/internal/parallel"
)

// RunReport is one experiment's outcome as run by the harness.
type RunReport struct {
	// ID, Title, Paper echo the registry entry.
	ID    string
	Title string
	Paper string
	// Result is the experiment output (nil on error).
	Result *Result
	// Err is the failure, if any.
	Err error
	// Wall is the experiment's wall-clock runtime.
	Wall time.Duration
}

// RunAll executes the named experiments — concurrently when cfg.Jobs allows
// — and returns reports in input order. Output is identical for any job
// count: every experiment derives randomness from cfg.Seed and stable cell
// identifiers, never from scheduling. Unknown IDs surface as per-report
// errors; validate up front with ByID to fail fast instead.
func RunAll(cfg Config, ids []string) []RunReport {
	return parallel.Map(len(ids), cfg.Jobs, func(i int) RunReport {
		rep := RunReport{ID: ids[i]}
		e, err := ByID(ids[i])
		if err != nil {
			rep.Err = err
			return rep
		}
		rep.Title, rep.Paper = e.Title, e.Paper
		start := time.Now()
		rep.Result, rep.Err = e.Run(cfg)
		rep.Wall = time.Since(start)
		return rep
	})
}
