package experiments

import (
	"syscall"
	"time"

	"exist/internal/parallel"
)

// RunReport is one experiment's outcome as run by the harness.
type RunReport struct {
	// ID, Title, Paper echo the registry entry.
	ID    string
	Title string
	Paper string
	// Result is the experiment output (nil on error).
	Result *Result
	// Err is the failure, if any.
	Err error
	// Wall is the experiment's wall-clock runtime.
	Wall time.Duration
	// CPU is the process CPU (user+system) consumed during the
	// experiment's wall window. With Jobs=1 this is the experiment's own
	// cost; with concurrent experiments the windows overlap, so per-ID
	// attribution is only exact in serial runs (benchmark harnesses
	// record CPU from -jobs 1 passes).
	CPU time.Duration
}

// cpuTime reads the process's cumulative user+system CPU time.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// RunAll executes the named experiments — concurrently when cfg.Jobs allows
// — and returns reports in input order. Output is identical for any job
// count: every experiment derives randomness from cfg.Seed and stable cell
// identifiers, never from scheduling. Unknown IDs surface as per-report
// errors; validate up front with ByID to fail fast instead.
func RunAll(cfg Config, ids []string) []RunReport {
	return parallel.Map(len(ids), cfg.Jobs, func(i int) RunReport {
		rep := RunReport{ID: ids[i]}
		e, err := ByID(ids[i])
		if err != nil {
			rep.Err = err
			return rep
		}
		rep.Title, rep.Paper = e.Title, e.Paper
		start := time.Now()
		cpuStart := cpuTime()
		rep.Result, rep.Err = e.Run(cfg)
		rep.Wall = time.Since(start)
		rep.CPU = cpuTime() - cpuStart
		return rep
	})
}
