// Command existd drives one simulated node running the EXIST tracing
// facility: it installs a workload (plus a co-located best-effort filler),
// opens a bounded tracing session, and prints the session summary and the
// decoded execution profile — the node-level "daemon" view of the system.
//
// The daemon is a thin shell over the node runtime: it provisions a
// node.Spec, attaches the EXIST backend from the tracer registry, runs the
// window, and harvests the session.
//
// Usage:
//
//	existd -app Search1 -period 500ms -cores 16 -budget-mb 500
//	existd -spec traffic.yaml -period 500ms
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"exist/internal/decode"
	"exist/internal/faults"
	"exist/internal/memalloc"
	"exist/internal/node"
	"exist/internal/simtime"
	"exist/internal/spec"
	"exist/internal/trace"
	"exist/internal/tracer"
	"exist/internal/workload"
)

func main() {
	var (
		appName  = flag.String("app", "Search1", "workload profile to trace (see -list)")
		specFile = flag.String("spec", "", "scenario spec document: trace its app on its node placement (overrides -app/-cores)")
		list     = flag.Bool("list", false, "list workload profiles and exit")
		period   = flag.Duration("period", 500*time.Millisecond, "tracing period (0.1s-2s)")
		cores    = flag.Int("cores", 16, "node core count")
		budgetMB = flag.Int64("budget-mb", 500, "tracing memory budget")
		ratio    = flag.Float64("sample-ratio", 0, "coreset sampling ratio for CPU-share apps (0 = auto)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		dump     = flag.String("dump", "", "write the serialized session to this file (decode offline with existdecode)")

		grayDelay = flag.Duration("gray-delay", 0, "simulate gray failure: mean extra heartbeat delay (0 = off)")
		leaseTTL  = flag.Duration("lease-ttl", 400*time.Millisecond, "controller lease TTL the gray-failure report scores against")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.All() {
			fmt.Printf("%-8s %-9s %s\n", p.Name, p.Class, p.Desc)
		}
		return
	}

	p, err := workload.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	filler, err := workload.ByName("Cache")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	coRunners := []node.CoRunner{{Profile: filler, SeedOffset: 1}}
	nodeCores, nodeSeed, threads := *cores, *seed, 0
	if *specFile != "" {
		app, placed, err := loadSpecPlacement(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spec:", err)
			os.Exit(2)
		}
		p = app
		coRunners = placed.CoRunners
		if placed.Cores > 0 {
			nodeCores = placed.Cores
		}
		if placed.Seed != 0 {
			nodeSeed = placed.Seed
		}
		threads = placed.Threads
	}

	prog := node.Program(p, nodeSeed)
	rt := node.Provision(node.Spec{
		Cores:     nodeCores,
		HT:        true,
		Seed:      nodeSeed,
		Threads:   threads,
		Timeslice: 1 * simtime.Millisecond,
		Workload:  p,
		Walker:    true,
		Scale:     trace.SpaceScale,
		Prog:      prog,
		CoRunners: coRunners,
		Warmup:    100 * simtime.Millisecond,
		Dur:       simtime.Duration(period.Nanoseconds()),
		Drain:     10 * simtime.Millisecond,
		Backend:   "EXIST",
		Tracer: tracer.Options{
			Mem:       &memalloc.Config{Budget: *budgetMB << 20, PerCoreMin: 4 << 20, PerCoreMax: 128 << 20, SampleRatio: *ratio},
			SessionID: "existd-session",
		},
		KeepSession: true,
	})
	m := rt.Machine

	fmt.Printf("existd: node with %d cores; tracing %s (%s, %d threads, %s) for %v\n",
		nodeCores, p.Name, p.Desc, p.Threads, rt.Proc.Mode, *period)

	// Warm up, then open the session (EXIST is triggered on demand).
	if err := rt.Attach(); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	sess := rt.Backend.(*tracer.EXIST).CoreSession()
	fmt.Printf("existd: UMA plan: %d traced cores (ratio %.0f%%), %.0f MB allocated\n",
		len(sess.Plan.Cores), sess.Plan.SampleRatio*100, float64(sess.Plan.TotalBytes)/(1<<20))

	rt.Run()
	r, err := rt.Harvest()
	if err != nil {
		fmt.Fprintln(os.Stderr, "result:", err)
		os.Exit(1)
	}
	result := r.Session

	fmt.Printf("existd: window %v; %d five-tuple records; %.1f MB trace (real scale); %d MSR ops total\n",
		result.Duration(), len(result.Switches.Records), result.SpaceMB(), sess.Stats.MSROps)
	fmt.Printf("existd: control ops: %d cores enabled once each (O(#cores), not O(%d switches))\n",
		sess.Stats.EnabledCores, m.Stats.Switches)

	if *dump != "" {
		// Stream the v2 encoding block by block instead of marshaling the
		// whole session into memory first; existdecode reads it back with
		// the streaming decoder (v1 dumps from older builds still decode).
		f, err := os.Create(*dump)
		if err == nil {
			err = result.EncodeTo(f, trace.EncodePacked)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
		fmt.Printf("existd: session written to %s (decode with: existdecode -app %s -seed %d -in %s)\n",
			*dump, p.Name, nodeSeed, *dump)
	}

	rec := decode.Decode(result, prog)
	fmt.Printf("existd: decoded %d control-flow events across %d threads (%d decode notes)\n",
		rec.Events, len(rec.ByThread), len(rec.Errors))

	type fnCount struct {
		name string
		n    int64
	}
	var hot []fnCount
	for fn, n := range rec.FuncEntries {
		hot = append(hot, fnCount{prog.Funcs[fn].Name, n})
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].n > hot[j].n })
	fmt.Println("existd: hottest functions (by traced indirect-call entries):")
	for i, fc := range hot {
		if i >= 10 {
			break
		}
		fmt.Printf("  %6d  %s\n", fc.n, fc.name)
	}

	grayReport(*grayDelay, *leaseTTL, nodeSeed)
}

// loadSpecPlacement reads a scenario document (file path or bundled
// scenario name), compiles its profiles against the built-in table and
// returns the traced app plus the node spec its placement lowers to.
func loadSpecPlacement(path string) (workload.Profile, node.Spec, error) {
	var doc *spec.Document
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if doc, err = spec.Parse(path, data); err != nil {
			return workload.Profile{}, node.Spec{}, err
		}
	case os.IsNotExist(err):
		if doc, err = spec.LoadBuiltin(path); err != nil {
			return workload.Profile{}, node.Spec{}, fmt.Errorf("no file %q and no bundled scenario by that name", path)
		}
	default:
		return workload.Profile{}, node.Spec{}, err
	}
	if doc.Scenario == nil || doc.Scenario.App == "" {
		return workload.Profile{}, node.Spec{}, fmt.Errorf("%s: document needs a scenario with an app to trace", doc.Src)
	}
	ctx := map[string]workload.Profile{}
	for _, p := range workload.All() {
		ctx[p.Name] = p
	}
	compiled, err := workload.CompileProfiles(doc, ctx)
	if err != nil {
		return workload.Profile{}, node.Spec{}, err
	}
	byName := map[string]workload.Profile{}
	for _, p := range compiled {
		byName[p.Name] = p
	}
	lookup := func(name string) (workload.Profile, error) {
		if p, ok := byName[name]; ok {
			return p, nil
		}
		return workload.ByName(name)
	}
	app, err := lookup(doc.Scenario.App)
	if err != nil {
		return workload.Profile{}, node.Spec{}, err
	}
	ns, err := node.SpecFromPlacement(doc.Scenario.Node, app, lookup)
	if err != nil {
		return workload.Profile{}, node.Spec{}, err
	}
	return app, ns, nil
}

// grayReport prints the gray-failure view when enabled.
func grayReport(grayDelay, leaseTTL time.Duration, seed uint64) {
	// Gray-failure report: the daemon-side view of a slow-but-alive
	// node. Replay the seeded heartbeat-delay schedule this node would
	// suffer and score it against a controller lease TTL — every
	// heartbeat arriving after its lease lapsed is a false suspicion
	// (the controller re-samples sessions from a node that never died).
	if grayDelay > 0 {
		in := faults.New(faults.Config{
			Seed:          seed,
			GrayNodeProb:  1,
			GrayDelayMean: simtime.Duration(grayDelay.Nanoseconds()),
		})
		ttl := simtime.Duration(leaseTTL.Nanoseconds())
		const beats = 50
		lapses := 0
		var maxDelay simtime.Duration
		for i := int64(0); i < beats; i++ {
			d := in.HeartbeatDelay("existd-node", i)
			if d > maxDelay {
				maxDelay = d
			}
			if d >= ttl {
				lapses++
			}
		}
		st := in.Stats()
		fmt.Printf("existd: gray-failure report (mean delay %v, lease TTL %v):\n", grayDelay, leaseTTL)
		fmt.Printf("  %d/%d heartbeats delayed, max delay %v\n", st.GrayDelays, int64(beats), maxDelay)
		fmt.Printf("  %d would arrive after lease lapse: false suspicions (node alive, controller re-samples)\n", lapses)
	}
}
