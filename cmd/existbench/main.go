// Command existbench regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	existbench -list                 # show available experiment IDs
//	existbench -run fig13,tab04      # run specific experiments
//	existbench -all                  # run everything
//	existbench -all -quick           # reduced durations (CI-sized)
//	existbench -all -jobs 8          # run experiments on 8 workers
//	existbench -all -benchjson out.json   # machine-readable timings
//
// Output is plain-text tables; each carries notes stating what the paper
// reports for the same artifact. Stdout is byte-identical for any -jobs
// value (timing lines go to stderr), so CI can diff parallel against
// serial runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"exist/internal/decode"
	"exist/internal/experiments"
	"exist/internal/hotbench"
	"exist/internal/parallel"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		run        = flag.String("run", "", "comma-separated experiment IDs to run")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "reduced durations and sweep sizes")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		jobs       = flag.Int("jobs", 0, "worker count for experiment and sweep fan-out (0: GOMAXPROCS, 1: serial)")
		benchJSON  = flag.String("benchjson", "", "write machine-readable wall times and hot-path benchmarks to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
			fmt.Printf("%-16s paper: %s\n", "", e.Paper)
		}
		return
	}

	ids, err := selectIDs(*all, *run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "existbench:", err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Jobs: *jobs}
	start := time.Now()
	reports := experiments.RunAll(cfg, ids)
	total := time.Since(start)

	failures := 0
	for _, rep := range reports {
		fmt.Printf("### %s — %s\n", rep.ID, rep.Title)
		fmt.Printf("### paper: %s\n\n", rep.Paper)
		if rep.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", rep.ID, rep.Err)
			failures++
			continue
		}
		fmt.Print(rep.Result.Render())
		if len(rep.Result.Metrics) > 0 {
			fmt.Println("headline metrics:")
			for _, n := range rep.Result.SortedMetrics() {
				fmt.Printf("  %-36s %.4g\n", n, rep.Result.Metrics[n])
			}
		}
		fmt.Println()
		fmt.Fprintf(os.Stderr, "%s completed in %v\n", rep.ID, rep.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "total wall time %v (%d experiments, jobs=%d)\n",
		total.Round(time.Millisecond), len(reports), parallel.Workers(*jobs))

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, cfg, reports, total); err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			failures++
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// selectIDs resolves the -all/-run selection into a validated, deduplicated
// ID list. Unknown or duplicate IDs fail before any experiment runs.
func selectIDs(all bool, run string) ([]string, error) {
	if all {
		var ids []string
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		return ids, nil
	}
	if run == "" {
		return nil, fmt.Errorf("nothing to do (use -list, -run or -all)")
	}
	seen := make(map[string]bool)
	var ids []string
	for _, id := range strings.Split(run, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if _, err := experiments.ByID(id); err != nil {
			return nil, err
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiment IDs in -run %q", run)
	}
	return ids, nil
}

// benchResult is one hot-path microbenchmark measurement.
type benchResult struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// prePRBaselines are the hot-path numbers measured at the commit before the
// parallel-harness PR (same fixtures, -benchmem), recorded so regressions
// and the optimization headroom stay visible — the same convention as the
// publishedSOTA rows in Table 3.
var prePRBaselines = map[string]benchResult{
	"decode_hot": {NsPerOp: 22_900_000, AllocsPerOp: 1195, BytesPerOp: 15_402_504},
	"encode_hot": {NsPerOp: 21_900_000, AllocsPerOp: 20, BytesPerOp: 67_111_138},
}

// writeBenchJSON emits per-experiment wall times plus freshly measured
// hot-path microbenchmarks on the shared hotbench fixtures.
func writeBenchJSON(path string, cfg experiments.Config, reports []experiments.RunReport, total time.Duration) error {
	type expTime struct {
		ID     string  `json:"id"`
		WallMS float64 `json:"wall_ms"`
		Failed bool    `json:"failed,omitempty"`
	}
	out := struct {
		Quick       bool                   `json:"quick"`
		Seed        uint64                 `json:"seed"`
		Jobs        int                    `json:"jobs"`
		GOMAXPROCS  int                    `json:"gomaxprocs"`
		Experiments []expTime              `json:"experiments"`
		TotalWallMS float64                `json:"total_wall_ms"`
		HotPaths    map[string]benchResult `json:"hot_paths"`
		PrePR       map[string]benchResult `json:"pre_pr_baseline"`
	}{
		Quick:       cfg.Quick,
		Seed:        cfg.Seed,
		Jobs:        parallel.Workers(cfg.Jobs),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TotalWallMS: float64(total) / float64(time.Millisecond),
		HotPaths:    map[string]benchResult{},
		PrePR:       prePRBaselines,
	}
	for _, rep := range reports {
		out.Experiments = append(out.Experiments, expTime{
			ID: rep.ID, WallMS: float64(rep.Wall) / float64(time.Millisecond), Failed: rep.Err != nil,
		})
	}

	const budget = 4_000_000
	decProg := hotbench.Program(1)
	decSess := hotbench.Session(decProg, 1, budget)
	var decBytes int64
	for _, c := range decSess.Cores {
		decBytes += int64(len(c.Data))
	}
	out.HotPaths["decode_hot"] = toBenchResult(testing.Benchmark(func(b *testing.B) {
		b.SetBytes(decBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			decode.Decode(decSess, decProg)
		}
	}))
	encProg := hotbench.Program(2)
	encBytes := hotbench.EncodeOnce(encProg, 2, budget)
	out.HotPaths["encode_hot"] = toBenchResult(testing.Benchmark(func(b *testing.B) {
		b.SetBytes(encBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hotbench.EncodeOnce(encProg, 2, budget)
		}
	}))

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func toBenchResult(r testing.BenchmarkResult) benchResult {
	out := benchResult{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if sec := r.T.Seconds(); sec > 0 {
		out.MBPerS = float64(r.Bytes) * float64(r.N) / 1e6 / sec
	}
	return out
}
