// Command existbench regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	existbench -list                 # show available experiment IDs
//	existbench -run fig13,tab04      # run specific experiments
//	existbench -all                  # run everything
//	existbench -all -quick           # reduced durations (CI-sized)
//
// Output is plain-text tables; each carries notes stating what the paper
// reports for the same artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"exist/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		run   = flag.String("run", "", "comma-separated experiment IDs to run")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced durations and sweep sizes")
		seed  = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
			fmt.Printf("%-16s paper: %s\n", "", e.Paper)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		fmt.Fprintln(os.Stderr, "existbench: nothing to do (use -list, -run or -all)")
		os.Exit(2)
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	failures := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failures++
			continue
		}
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("### paper: %s\n\n", e.Paper)
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failures++
			continue
		}
		fmt.Print(res.Render())
		if len(res.Metrics) > 0 {
			names := res.SortedMetrics()
			sort.Strings(names)
			fmt.Println("headline metrics:")
			for _, n := range names {
				fmt.Printf("  %-36s %.4g\n", n, res.Metrics[n])
			}
		}
		fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		os.Exit(1)
	}
}
