// Command existbench regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	existbench -list                 # show experiment IDs and bundled scenarios
//	existbench -run fig13,tab04      # run specific experiments
//	existbench -spec traffic.yaml    # run a scenario spec document end to end
//	existbench -spec diurnal         # run a bundled scenario by name
//	existbench -all                  # run everything
//	existbench -all -quick           # reduced durations (CI-sized)
//	existbench -all -jobs 8          # run experiments on 8 workers
//	existbench -all -benchjson out.json   # machine-readable timings
//
// Output is plain-text tables; each carries notes stating what the paper
// reports for the same artifact. Stdout is byte-identical for any -jobs
// value (timing lines go to stderr), so CI can diff parallel against
// serial runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"sort"
	"strings"
	"testing"
	"time"

	"exist/internal/decode"
	"exist/internal/experiments"
	"exist/internal/hotbench"
	"exist/internal/parallel"
	"exist/internal/spec"
	"exist/internal/trace"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiment IDs and bundled scenarios, then exit")
		run        = flag.String("run", "", "comma-separated experiment IDs to run")
		all        = flag.Bool("all", false, "run every experiment")
		specFile   = flag.String("spec", "", "run a scenario spec document (JSON or YAML) end to end")
		quick      = flag.Bool("quick", false, "reduced durations and sweep sizes")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		jobs       = flag.Int("jobs", 0, "worker count for experiment and sweep fan-out (0: GOMAXPROCS, 1: serial)")
		benchJSON  = flag.String("benchjson", "", "write machine-readable wall times and hot-path benchmarks to this file")
		benchCheck = flag.String("benchcheck", "", "compare freshly measured hot paths against this baseline JSON and fail on regression")
		benchTol   = flag.Float64("benchtol", 0.2, "relative tolerance for -benchcheck (0.2 = ±20%)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
		execTrace  = flag.String("exectrace", "", "write a runtime/trace execution trace to this file (inspect with go tool trace)")
	)
	flag.Parse()

	if *benchCheck != "" {
		if err := runBenchCheck(*benchCheck, *benchTol); err != nil {
			fmt.Fprintln(os.Stderr, "existbench: bench regression:", err)
			os.Exit(1)
		}
		fmt.Println("bench check passed")
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
			fmt.Printf("%-16s paper: %s\n", "", e.Paper)
		}
		fmt.Println()
		fmt.Println("bundled scenarios (run the scenario experiment, or any one with -spec):")
		for _, name := range spec.BuiltinNames() {
			doc, err := spec.LoadBuiltin(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "existbench:", err)
				os.Exit(1)
			}
			fmt.Printf("%-16s %s\n", name, doc.Desc)
		}
		return
	}

	if *specFile != "" {
		if err := runSpecFile(*specFile, experiments.Config{Quick: *quick, Seed: *seed, Jobs: *jobs}); err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
		return
	}

	ids, err := selectIDs(*all, *run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "existbench:", err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
		defer rtrace.Stop()
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Jobs: *jobs}
	start := time.Now()
	reports := experiments.RunAll(cfg, ids)
	total := time.Since(start)

	failures := 0
	for _, rep := range reports {
		fmt.Printf("### %s — %s\n", rep.ID, rep.Title)
		fmt.Printf("### paper: %s\n\n", rep.Paper)
		if rep.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", rep.ID, rep.Err)
			failures++
			continue
		}
		fmt.Print(rep.Result.Render())
		if len(rep.Result.Metrics) > 0 {
			fmt.Println("headline metrics:")
			for _, n := range rep.Result.SortedMetrics() {
				fmt.Printf("  %-36s %.4g\n", n, rep.Result.Metrics[n])
			}
		}
		fmt.Println()
		fmt.Fprintf(os.Stderr, "%s completed in %v\n", rep.ID, rep.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "total wall time %v (%d experiments, jobs=%d)\n",
		total.Round(time.Millisecond), len(reports), parallel.Workers(*jobs))

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, cfg, reports, total); err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			failures++
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "existbench:", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// runSpecFile loads a scenario document — a file path, or the name of a
// bundled scenario — and runs it end to end through the same pipeline as
// the scenario experiment. Replay traces resolve relative to the document.
func runSpecFile(path string, cfg experiments.Config) error {
	var doc *spec.Document
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		doc, err = spec.Parse(path, data)
		if err != nil {
			return err
		}
		if err := doc.ResolveReplay(func(p string) ([]byte, error) {
			return os.ReadFile(filepath.Join(filepath.Dir(path), p))
		}); err != nil {
			return err
		}
	case os.IsNotExist(err):
		doc, err = spec.LoadBuiltin(path)
		if err != nil {
			return fmt.Errorf("no file %q and no bundled scenario by that name", path)
		}
	default:
		return err
	}
	res, err := experiments.RunSpec(cfg, doc)
	if err != nil {
		return err
	}
	name := doc.Name
	if name == "" {
		name = doc.Src
	}
	fmt.Printf("### spec — %s\n", name)
	if doc.Desc != "" {
		fmt.Printf("### %s\n", doc.Desc)
	}
	fmt.Println()
	fmt.Print(res.Render())
	if len(res.Metrics) > 0 {
		fmt.Println("headline metrics:")
		for _, n := range res.SortedMetrics() {
			fmt.Printf("  %-36s %.4g\n", n, res.Metrics[n])
		}
	}
	return nil
}

// selectIDs resolves the -all/-run selection into a validated, deduplicated
// ID list. Unknown or duplicate IDs fail before any experiment runs.
func selectIDs(all bool, run string) ([]string, error) {
	if all {
		var ids []string
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		return ids, nil
	}
	if run == "" {
		return nil, fmt.Errorf("nothing to do (use -list, -run or -all)")
	}
	seen := make(map[string]bool)
	var ids []string
	for _, id := range strings.Split(run, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if _, err := experiments.ByID(id); err != nil {
			return nil, err
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiment IDs in -run %q", run)
	}
	return ids, nil
}

// benchResult is one hot-path microbenchmark measurement.
type benchResult struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// prePRBaselines are the hot-path numbers measured at the commit before
// each optimization PR landed (same fixtures, -benchmem), recorded so
// regressions and the optimization headroom stay visible — the same
// convention as the publishedSOTA rows in Table 3. decode_hot/encode_hot
// predate the parallel-harness PR; marshal_hot/unmarshal_hot are the
// reflection-based (encoding/binary) v1 serializer before the v2 wire
// format replaced it; sched_hot/tracer_hot predate the simulation-engine
// fast path (per-event closure emission, per-packet output, container/heap
// event queue).
var prePRBaselines = map[string]benchResult{
	"decode_hot":    {NsPerOp: 22_900_000, AllocsPerOp: 1195, BytesPerOp: 15_402_504},
	"encode_hot":    {NsPerOp: 21_900_000, AllocsPerOp: 20, BytesPerOp: 67_111_138},
	"marshal_hot":   {NsPerOp: 206_617, AllocsPerOp: 16, BytesPerOp: 1_159_471},
	"unmarshal_hot": {NsPerOp: 102_445, AllocsPerOp: 32, BytesPerOp: 401_730},
	"sched_hot":     {NsPerOp: 63_196, AllocsPerOp: 178, BytesPerOp: 9_025},
	"tracer_hot":    {NsPerOp: 1_478_338, AllocsPerOp: 0, BytesPerOp: 0},
}

// datapathStats records exact encoded sizes of the decode-hot fixture
// session in each wire format.
type datapathStats struct {
	V1Bytes       int64   `json:"v1_bytes"`
	V2RawBytes    int64   `json:"v2_raw_bytes"`
	V2PackedBytes int64   `json:"v2_packed_bytes"`
	PackedRatio   float64 `json:"packed_ratio"`
}

// measureHotPaths runs the hot-path microbenchmarks on the shared
// hotbench fixtures and measures the wire-format sizes. marshal_hot and
// unmarshal_hot are the throughput-optimized v2 raw mode (the *_packed
// variants trade CPU for the wire-size win reported in datapath).
func measureHotPaths() (map[string]benchResult, datapathStats) {
	hot := map[string]benchResult{}
	const budget = 4_000_000
	decProg := hotbench.Program(1)
	decSess := hotbench.Session(decProg, 1, budget)
	var decBytes int64
	for _, c := range decSess.Cores {
		decBytes += int64(len(c.Data))
	}
	hot["decode_hot"] = toBenchResult(testing.Benchmark(func(b *testing.B) {
		b.SetBytes(decBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			decode.Decode(decSess, decProg)
		}
	}))
	encProg := hotbench.Program(2)
	encBytes := hotbench.EncodeOnce(encProg, 2, budget)
	hot["encode_hot"] = toBenchResult(testing.Benchmark(func(b *testing.B) {
		b.SetBytes(encBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hotbench.EncodeOnce(encProg, 2, budget)
		}
	}))

	// Simulation-engine hot paths: the walker segment loop end to end, and
	// the tracer's batched packet-generation path on a canned event stream.
	sb := hotbench.NewSchedBench(1)
	windowBytes := sb.RunWindow()
	hot["sched_hot"] = toBenchResult(testing.Benchmark(func(b *testing.B) {
		b.SetBytes(windowBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sb.RunWindow()
		}
	}))
	trEvs := hotbench.Events(hotbench.Program(1), 1, 2_000_000)
	trHot := hotbench.NewHotTracer(1 << 20)
	trBytes := hotbench.TracerHotOnce(trHot, trEvs)
	hot["tracer_hot"] = toBenchResult(testing.Benchmark(func(b *testing.B) {
		b.SetBytes(trBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hotbench.TracerHotOnce(trHot, trEvs)
		}
	}))

	// Wire-format hot paths, all normalized to v1-equivalent bytes so the
	// MB/s columns compare like for like.
	v1Bytes := int64(trace.V1Size(decSess))
	bench := func(name string, fn func()) {
		hot[name] = toBenchResult(testing.Benchmark(func(b *testing.B) {
			b.SetBytes(v1Bytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		}))
	}
	bench("marshal_v1", func() { decSess.MarshalV1() })
	bench("marshal_hot", func() { decSess.MarshalMode(trace.EncodeRaw) })
	bench("marshal_hot_packed", func() { decSess.Marshal() })
	v1Blob := decSess.MarshalV1()
	rawBlob := decSess.MarshalMode(trace.EncodeRaw)
	packedBlob := decSess.Marshal()
	bench("unmarshal_v1", func() { trace.UnmarshalSession(v1Blob) })
	bench("unmarshal_hot", func() { trace.UnmarshalSession(rawBlob) })
	bench("unmarshal_hot_packed", func() { trace.UnmarshalSession(packedBlob) })

	dp := datapathStats{
		V1Bytes:       int64(len(v1Blob)),
		V2RawBytes:    int64(len(rawBlob)),
		V2PackedBytes: int64(len(packedBlob)),
	}
	dp.PackedRatio = float64(dp.V1Bytes) / float64(dp.V2PackedBytes)
	return hot, dp
}

// benchFile is the serialized benchmark snapshot (BENCH_harness.json).
// GOMAXPROCS records the configuration the baseline was measured under, so
// -benchcheck can refuse to compare throughput across unlike machines.
type benchFile struct {
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Jobs       int                    `json:"jobs"`
	HotPaths   map[string]benchResult `json:"hot_paths"`
	Datapath   *datapathStats         `json:"datapath,omitempty"`
}

// runBenchCheck re-measures the hot paths and fails if allocs/op or MB/s
// regressed beyond tol against the recorded baseline, or if the packed
// compression ratio dropped. Improvements always pass. Throughput is only
// compared like-for-like: when the baseline was recorded under a different
// GOMAXPROCS, MB/s rows are informational and only the scheduler-independent
// metrics (allocs/op, compression ratio) gate.
func runBenchCheck(path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	sameConfig := base.GOMAXPROCS == 0 || base.GOMAXPROCS == runtime.GOMAXPROCS(0)
	if !sameConfig {
		fmt.Printf("baseline measured at GOMAXPROCS=%d, this run is %d: throughput rows informational only\n",
			base.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	hot, dp := measureHotPaths()
	var problems []string
	names := make([]string, 0, len(base.HotPaths))
	for name := range base.HotPaths {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.HotPaths[name]
		got, ok := hot[name]
		if !ok {
			continue // baseline knows a path this binary no longer measures
		}
		if float64(got.AllocsPerOp) > float64(want.AllocsPerOp)*(1+tol)+0.5 {
			problems = append(problems, fmt.Sprintf(
				"%s: allocs/op %d exceeds baseline %d by more than %.0f%%",
				name, got.AllocsPerOp, want.AllocsPerOp, tol*100))
		}
		if sameConfig && want.MBPerS > 0 && got.MBPerS < want.MBPerS*(1-tol) {
			problems = append(problems, fmt.Sprintf(
				"%s: %.1f MB/s is more than %.0f%% below baseline %.1f MB/s",
				name, got.MBPerS, tol*100, want.MBPerS))
		}
		fmt.Printf("%-22s %9.1f MB/s (baseline %9.1f)  %5d allocs/op (baseline %5d)\n",
			name, got.MBPerS, want.MBPerS, got.AllocsPerOp, want.AllocsPerOp)
	}
	if base.Datapath != nil {
		fmt.Printf("%-22s %9.2fx (baseline %9.2fx)\n", "packed_ratio", dp.PackedRatio, base.Datapath.PackedRatio)
		if dp.PackedRatio < base.Datapath.PackedRatio*(1-tol) {
			problems = append(problems, fmt.Sprintf(
				"packed compression ratio %.2fx is more than %.0f%% below baseline %.2fx",
				dp.PackedRatio, tol*100, base.Datapath.PackedRatio))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("%s", strings.Join(problems, "; "))
	}
	return nil
}

// writeBenchJSON emits per-experiment wall times plus freshly measured
// hot-path microbenchmarks on the shared hotbench fixtures.
func writeBenchJSON(path string, cfg experiments.Config, reports []experiments.RunReport, total time.Duration) error {
	// cpu_ms is the process CPU consumed during the experiment's wall
	// window — exact per-ID attribution only when jobs=1 (see RunReport.CPU).
	type expTime struct {
		ID     string  `json:"id"`
		WallMS float64 `json:"wall_ms"`
		CPUMS  float64 `json:"cpu_ms"`
		Failed bool    `json:"failed,omitempty"`
	}
	hot, dp := measureHotPaths()
	out := struct {
		Quick       bool                   `json:"quick"`
		Seed        uint64                 `json:"seed"`
		Jobs        int                    `json:"jobs"`
		GOMAXPROCS  int                    `json:"gomaxprocs"`
		Experiments []expTime              `json:"experiments"`
		TotalWallMS float64                `json:"total_wall_ms"`
		HotPaths    map[string]benchResult `json:"hot_paths"`
		Datapath    datapathStats          `json:"datapath"`
		PrePR       map[string]benchResult `json:"pre_pr_baseline"`
	}{
		Quick:       cfg.Quick,
		Seed:        cfg.Seed,
		Jobs:        parallel.Workers(cfg.Jobs),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TotalWallMS: float64(total) / float64(time.Millisecond),
		HotPaths:    hot,
		Datapath:    dp,
		PrePR:       prePRBaselines,
	}
	for _, rep := range reports {
		out.Experiments = append(out.Experiments, expTime{
			ID:     rep.ID,
			WallMS: float64(rep.Wall) / float64(time.Millisecond),
			CPUMS:  float64(rep.CPU) / float64(time.Millisecond),
			Failed: rep.Err != nil,
		})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func toBenchResult(r testing.BenchmarkResult) benchResult {
	out := benchResult{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if sec := r.T.Seconds(); sec > 0 {
		out.MBPerS = float64(r.Bytes) * float64(r.N) / 1e6 / sec
	}
	return out
}
