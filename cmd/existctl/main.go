// Command existctl exercises the cluster-level configuration interface:
// it builds a simulated cluster, deploys an application across nodes,
// files a TraceRequest CRD (as engineers do through the Kubernetes API in
// the paper's deployment), and reports the reconciled result — sessions in
// the object store and decoded rows in the structured store.
//
// Usage:
//
//	existctl -app Agent -nodes 10 -purpose anomaly -period 500ms
//
// Fault injection is strictly opt-in: the -loss/-corrupt/-put-fail/
// -crash-mtbf/-stall flags attach a seeded injector and exercise the
// resilient control plane (retries, leases, re-sampling, deadlines).
// -cancel-after aborts the request mid-flight and deletes it, walking the
// full CRD lifecycle.
//
// Chaos scenarios are likewise opt-in: -replicas runs N controller
// replicas with lease-based leader election, and -ctrl-crash-mtbf /
// -partition-mtbf / -gray-prob / -clock-skew select controller-crash,
// store-partition, gray-failure, and clock-skew storms. With -replicas
// set, the run ends with an availability/failover summary:
//
//	existctl -replicas 3 -ctrl-crash-mtbf 1s -partition-mtbf 800ms
//
// -shards splits the API-server store into N shards with range-leased
// reconciliation: each replica leads a subset of shards, and the run
// ends with a per-shard scaling summary (leaders, queue depths,
// reconciles/s, rebalances):
//
//	existctl -replicas 3 -shards 8 -ctrl-crash-mtbf 1s
package main

import (
	"flag"
	"fmt"
	"os"

	"exist/internal/cluster"
	"exist/internal/coverage"
	"exist/internal/faults"
	"exist/internal/metrics"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
)

func main() {
	var (
		appName = flag.String("app", "Agent", "application to trace")
		nodes   = flag.Int("nodes", 10, "cluster size")
		cores   = flag.Int("cores", 8, "cores per node")
		purpose = flag.String("purpose", "anomaly", "anomaly | profiling")
		period  = flag.Duration("period", 0, "tracing period (0 = temporal decider)")
		seed    = flag.Uint64("seed", 1, "simulation seed")

		lossProb    = flag.Float64("loss", 0, "per-session data-loss probability (enables fault injection)")
		corruptProb = flag.Float64("corrupt", 0, "per-session buffer bit-flip probability")
		truncProb   = flag.Float64("truncate", 0, "per-session buffer tail-chop probability")
		putFailProb = flag.Float64("put-fail", 0, "per-attempt object-store failure probability")
		stallProb   = flag.Float64("stall", 0, "per-iteration controller stall probability")
		crashMTBF   = flag.Duration("crash-mtbf", 0, "node mean time between crashes (0 = no crashes)")
		faultSeed   = flag.Uint64("fault-seed", 42, "fault-injection seed")

		replicas      = flag.Int("replicas", 0, "controller replicas with leader election (0 = serial control plane)")
		shards        = flag.Int("shards", 0, "API-server store shards with range-leased reconciliation (0 = single shard)")
		ctrlCrashMTBF = flag.Duration("ctrl-crash-mtbf", 0, "controller mean time between crashes (0 = none)")
		ctrlCrashDown = flag.Duration("ctrl-crash-down", 0, "controller crash downtime (0 = default)")
		partitionMTBF = flag.Duration("partition-mtbf", 0, "controller-store partition mean time between events (0 = none)")
		partitionDur  = flag.Duration("partition-dur", 0, "mean partition duration (0 = default)")
		grayProb      = flag.Float64("gray-prob", 0, "probability a node is a gray failure (late heartbeats)")
		grayDelay     = flag.Duration("gray-delay", 0, "mean extra heartbeat delay on gray nodes (0 = default)")
		clockSkew     = flag.Duration("clock-skew", 0, "max controller clock skew for lease stamps (0 = none)")

		cancelAfter = flag.Duration("cancel-after", 0, "cancel and delete the request after this virtual time (0 = run to completion)")
	)
	flag.Parse()

	p, err := workload.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pur := coverage.PurposeAnomaly
	if *purpose == "profiling" {
		pur = coverage.PurposeProfiling
	}

	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = *nodes
	ccfg.CoresPerNode = *cores
	ccfg.Seed = *seed
	ccfg.Replicas = *replicas
	ccfg.Shards = *shards
	fc := faults.Config{
		Seed:              *faultSeed,
		PutFailProb:       *putFailProb,
		SessionLossProb:   *lossProb,
		CorruptProb:       *corruptProb,
		TruncateProb:      *truncProb,
		StallProb:         *stallProb,
		CrashMTBF:         simtime.Duration(crashMTBF.Nanoseconds()),
		CtrlCrashMTBF:     simtime.Duration(ctrlCrashMTBF.Nanoseconds()),
		CtrlCrashDowntime: simtime.Duration(ctrlCrashDown.Nanoseconds()),
		PartitionMTBF:     simtime.Duration(partitionMTBF.Nanoseconds()),
		PartitionMeanDur:  simtime.Duration(partitionDur.Nanoseconds()),
		GrayNodeProb:      *grayProb,
		GrayDelayMean:     simtime.Duration(grayDelay.Nanoseconds()),
		ClockSkewMax:      simtime.Duration(clockSkew.Nanoseconds()),
	}
	faultsOn := fc != (faults.Config{Seed: *faultSeed})
	if faultsOn {
		ccfg.Faults = faults.New(fc)
	}
	c := cluster.New(ccfg)
	if err := c.Deploy(p, nil, workload.InstallOpts{Walker: true, Scale: trace.SpaceScale, Seed: *seed}); err != nil {
		fmt.Fprintln(os.Stderr, "deploy:", err)
		os.Exit(1)
	}
	fmt.Printf("existctl: deployed %s on %d nodes (%d cores each)\n", p.Name, *nodes, *cores)
	if faultsOn {
		fmt.Printf("existctl: fault injection ON (seed=%d loss=%.2f corrupt=%.2f truncate=%.2f put-fail=%.2f stall=%.2f crash-mtbf=%v)\n",
			*faultSeed, *lossProb, *corruptProb, *truncProb, *putFailProb, *stallProb, *crashMTBF)
	}
	if *ctrlCrashMTBF > 0 || *partitionMTBF > 0 || *grayProb > 0 || *clockSkew > 0 {
		fmt.Printf("existctl: chaos scenario ON (ctrl-crash-mtbf=%v partition-mtbf=%v gray-prob=%.2f gray-delay=%v clock-skew=%v)\n",
			*ctrlCrashMTBF, *partitionMTBF, *grayProb, *grayDelay, *clockSkew)
	}
	if *replicas > 0 {
		fmt.Printf("existctl: replicated control plane: %d controllers competing for the leader lease\n", *replicas)
	}
	if *shards > 1 {
		fmt.Printf("existctl: sharded API server: %d store shards with range-leased reconciliation\n", *shards)
	}

	req, err := c.Request("existctl-request", cluster.TraceRequestSpec{
		App:     p.Name,
		Purpose: pur,
		Period:  simtime.Duration(period.Nanoseconds()),
		Scale:   trace.SpaceScale,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "request:", err)
		os.Exit(1)
	}
	fmt.Printf("existctl: filed TraceRequest %q (purpose=%s)\n", req.Name, *purpose)
	// Subscribe to the request's watch stream, as operator tooling does.
	c.API.Watch(func(r *cluster.TraceRequest) {
		fmt.Printf("existctl: [watch %v] %s -> %s %s\n", c.Eng.Now(), r.Name, r.Phase, r.Message)
	})
	if *cancelAfter > 0 {
		c.Eng.Schedule(simtime.Time(cancelAfter.Nanoseconds()), func(now simtime.Time) {
			fmt.Printf("existctl: [%v] operator cancel of %s\n", now, req.Name)
			c.Cancel(req)
		})
	}

	// With a replicated control plane, sample the active-leader count
	// through the run: safety demands it never exceeds one. Under
	// sharding the invariant is per shard — distinct replicas may lead
	// disjoint shard ranges concurrently, but no shard may ever have two
	// fencing-valid owners at once.
	maxLeaders := 0
	if *replicas > 0 {
		var sample func(now simtime.Time)
		sample = func(now simtime.Time) {
			if *shards > 1 {
				for s := 0; s < c.API.Shards(); s++ {
					if n := c.ActiveOwnersShard(s, now); n > maxLeaders {
						maxLeaders = n
					}
				}
			} else if n := c.ActiveLeaders(now); n > maxLeaders {
				maxLeaders = n
			}
			if now < 5*simtime.Second {
				c.Eng.AfterDetached(10*simtime.Millisecond, sample)
			}
		}
		c.Eng.AfterDetached(10*simtime.Millisecond, sample)
	}

	c.Run(5 * simtime.Second)

	fmt.Printf("existctl: request phase: %s %s\n", req.Phase, req.Message)
	if req.Planned > 0 && len(req.SessionKeys) < req.Planned {
		fmt.Printf("existctl: partial coverage: %d/%d planned sessions landed (%d lost, %d re-sampled)\n",
			len(req.SessionKeys), req.Planned, req.Lost, req.Resampled)
	}
	fmt.Printf("existctl: %d sessions uploaded to OSS (%.1f KB raw)\n",
		len(req.SessionKeys), float64(c.OSS.Bytes())/1024)
	for _, key := range req.SessionKeys {
		blob, _ := c.OSS.Get(key)
		sess, err := trace.UnmarshalSession(blob)
		if err != nil {
			fmt.Fprintln(os.Stderr, "  ", key, err)
			continue
		}
		fmt.Printf("  %-40s window=%v cores=%d records=%d\n",
			key, sess.Duration(), len(sess.Cores), len(sess.Switches.Records))
	}
	agg := c.ODPS.AggregateApp(p.Name)
	fmt.Printf("existctl: ODPS holds %d rows; %d distinct functions for %s\n", c.ODPS.Len(), len(agg), p.Name)
	fmt.Printf("existctl: RCO management used %.2e cores on average (%.0f MB resident)\n",
		c.ManagementCores(), c.Mgmt.MemMB)
	if fi := ccfg.Faults; fi != nil {
		st := fi.Stats()
		fmt.Printf("existctl: injected faults: %d put errors, %d sessions lost, %d corrupted, %d truncated, %d crashes, %d stalls\n",
			st.PutFailures, st.SessionsLost, st.SessionsCorrupted, st.SessionsTruncated, st.Crashes, st.Stalls)
		fmt.Printf("existctl: control plane absorbed: %d retries, %d re-samples, %d lease expiries\n",
			c.Mgmt.Retries, c.Mgmt.Resamples, c.Mgmt.LeaseExpiries)
	}
	if *replicas > 0 && c.Leases != nil {
		avail, gaps := c.Leases.Availability(c.Eng.Now().Seconds())
		fmt.Printf("existctl: availability/failover summary (%d replicas):\n", *replicas)
		fmt.Printf("  leader availability       %.4f (%d leadership gaps)\n", avail, gaps)
		fmt.Printf("  elections / failovers     %d / %d\n", c.Leases.Elections(), c.Leases.Failovers())
		fmt.Printf("  mean re-adopt time        %.1f ms over %d re-adoptions\n", metrics.Mean(c.Readopts), len(c.Readopts))
		if *shards > 1 {
			fmt.Printf("  max owners of any shard   %d (must be 1)\n", maxLeaders)
		} else {
			fmt.Printf("  max concurrent leaders    %d (must be 1)\n", maxLeaders)
		}
		fmt.Printf("  syncs/requeues/conflicts  %d / %d / %d (%d fenced stale-leader ops)\n",
			c.Mgmt.Syncs, c.Mgmt.Requeues, c.Mgmt.Conflicts, c.Mgmt.FencedOps)
		fmt.Printf("  false suspicions / shed   %d / %d\n", c.Mgmt.FalseSuspicions, c.Mgmt.Shed)
	}
	if *shards > 1 && *replicas > 0 && c.Leases != nil {
		elapsed := c.Eng.Now().Seconds()
		fmt.Printf("existctl: shard scaling summary (%d shards):\n", *shards)
		for s := 0; s < c.API.Shards(); s++ {
			holder, token := c.Leases.HolderShard(s)
			if holder == "" {
				holder = "(none)"
			}
			fmt.Printf("  shard %-3d leader %-8s (fencing token %d)\n", s, holder, token)
		}
		for _, ct := range c.Controllers {
			fmt.Printf("  %-8s owns %d shards %v, queue depth %d\n",
				ct.Name, len(ct.OwnedShards()), ct.OwnedShards(), ct.QueueDepth())
		}
		rps := 0.0
		if elapsed > 0 {
			rps = float64(c.Mgmt.Syncs) / elapsed
		}
		fmt.Printf("  reconciles/s              %.1f (%d syncs over %.2fs)\n", rps, c.Mgmt.Syncs, elapsed)
		fmt.Printf("  shard rebalances          %d\n", c.ShardRebalances())
	}
	if *cancelAfter > 0 {
		if err := c.Delete(req.Name); err != nil {
			fmt.Fprintln(os.Stderr, "delete:", err)
			os.Exit(1)
		}
		if _, ok := c.API.Get(req.Name); ok {
			fmt.Fprintln(os.Stderr, "delete: request still present after Delete")
			os.Exit(1)
		}
		fmt.Printf("existctl: deleted TraceRequest %q (phase was %s); OSS now holds %d session blobs\n",
			req.Name, req.Phase, len(c.OSS.List("")))
	}
}
