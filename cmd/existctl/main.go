// Command existctl exercises the cluster-level configuration interface:
// it builds a simulated cluster, deploys an application across nodes,
// files a TraceRequest CRD (as engineers do through the Kubernetes API in
// the paper's deployment), and reports the reconciled result — sessions in
// the object store and decoded rows in the structured store.
//
// Usage:
//
//	existctl -app Agent -nodes 10 -purpose anomaly -period 500ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"exist/internal/cluster"
	"exist/internal/coverage"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
)

func main() {
	var (
		appName = flag.String("app", "Agent", "application to trace")
		nodes   = flag.Int("nodes", 10, "cluster size")
		cores   = flag.Int("cores", 8, "cores per node")
		purpose = flag.String("purpose", "anomaly", "anomaly | profiling")
		period  = flag.Duration("period", 0, "tracing period (0 = temporal decider)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	p, err := workload.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pur := coverage.PurposeAnomaly
	if *purpose == "profiling" {
		pur = coverage.PurposeProfiling
	}

	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = *nodes
	ccfg.CoresPerNode = *cores
	ccfg.Seed = *seed
	c := cluster.New(ccfg)
	if err := c.Deploy(p, nil, workload.InstallOpts{Walker: true, Scale: trace.SpaceScale, Seed: *seed}); err != nil {
		fmt.Fprintln(os.Stderr, "deploy:", err)
		os.Exit(1)
	}
	fmt.Printf("existctl: deployed %s on %d nodes (%d cores each)\n", p.Name, *nodes, *cores)

	req, err := c.Request("existctl-request", cluster.TraceRequestSpec{
		App:     p.Name,
		Purpose: pur,
		Period:  simtime.Duration(period.Nanoseconds()),
		Scale:   trace.SpaceScale,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "request:", err)
		os.Exit(1)
	}
	fmt.Printf("existctl: filed TraceRequest %q (purpose=%s)\n", req.Name, *purpose)
	// Subscribe to the request's watch stream, as operator tooling does.
	c.API.Watch(func(r *cluster.TraceRequest) {
		fmt.Printf("existctl: [watch %v] %s -> %s %s\n", c.Eng.Now(), r.Name, r.Phase, r.Message)
	})

	c.Run(5 * simtime.Second)

	fmt.Printf("existctl: request phase: %s %s\n", req.Phase, req.Message)
	fmt.Printf("existctl: %d sessions uploaded to OSS (%.1f KB raw)\n",
		len(req.SessionKeys), float64(c.OSS.Bytes())/1024)
	for _, key := range req.SessionKeys {
		blob, _ := c.OSS.Get(key)
		sess, err := trace.UnmarshalSession(blob)
		if err != nil {
			fmt.Fprintln(os.Stderr, "  ", key, err)
			continue
		}
		fmt.Printf("  %-40s window=%v cores=%d records=%d\n",
			key, sess.Duration(), len(sess.Cores), len(sess.Switches.Records))
	}
	agg := c.ODPS.AggregateApp(p.Name)
	fmt.Printf("existctl: ODPS holds %d rows; %d distinct functions for %s\n", c.ODPS.Len(), len(agg), p.Name)
	fmt.Printf("existctl: RCO management used %.2e cores on average (%.0f MB resident)\n",
		c.ManagementCores(), c.Mgmt.MemMB)
	_ = time.Second
}
