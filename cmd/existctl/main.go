// Command existctl exercises the cluster-level configuration interface:
// it builds a simulated cluster, deploys an application across nodes,
// files a TraceRequest CRD (as engineers do through the Kubernetes API in
// the paper's deployment), and reports the reconciled result — sessions in
// the object store and decoded rows in the structured store.
//
// Usage:
//
//	existctl -app Agent -nodes 10 -purpose anomaly -period 500ms
//
// Fault injection is strictly opt-in: the -loss/-corrupt/-put-fail/
// -crash-mtbf/-stall flags attach a seeded injector and exercise the
// resilient control plane (retries, leases, re-sampling, deadlines).
// -cancel-after aborts the request mid-flight and deletes it, walking the
// full CRD lifecycle.
package main

import (
	"flag"
	"fmt"
	"os"

	"exist/internal/cluster"
	"exist/internal/coverage"
	"exist/internal/faults"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
)

func main() {
	var (
		appName = flag.String("app", "Agent", "application to trace")
		nodes   = flag.Int("nodes", 10, "cluster size")
		cores   = flag.Int("cores", 8, "cores per node")
		purpose = flag.String("purpose", "anomaly", "anomaly | profiling")
		period  = flag.Duration("period", 0, "tracing period (0 = temporal decider)")
		seed    = flag.Uint64("seed", 1, "simulation seed")

		lossProb    = flag.Float64("loss", 0, "per-session data-loss probability (enables fault injection)")
		corruptProb = flag.Float64("corrupt", 0, "per-session buffer bit-flip probability")
		truncProb   = flag.Float64("truncate", 0, "per-session buffer tail-chop probability")
		putFailProb = flag.Float64("put-fail", 0, "per-attempt object-store failure probability")
		stallProb   = flag.Float64("stall", 0, "per-iteration controller stall probability")
		crashMTBF   = flag.Duration("crash-mtbf", 0, "node mean time between crashes (0 = no crashes)")
		faultSeed   = flag.Uint64("fault-seed", 42, "fault-injection seed")

		cancelAfter = flag.Duration("cancel-after", 0, "cancel and delete the request after this virtual time (0 = run to completion)")
	)
	flag.Parse()

	p, err := workload.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pur := coverage.PurposeAnomaly
	if *purpose == "profiling" {
		pur = coverage.PurposeProfiling
	}

	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = *nodes
	ccfg.CoresPerNode = *cores
	ccfg.Seed = *seed
	fc := faults.Config{
		Seed:            *faultSeed,
		PutFailProb:     *putFailProb,
		SessionLossProb: *lossProb,
		CorruptProb:     *corruptProb,
		TruncateProb:    *truncProb,
		StallProb:       *stallProb,
		CrashMTBF:       simtime.Duration(crashMTBF.Nanoseconds()),
	}
	faultsOn := fc != (faults.Config{Seed: *faultSeed})
	if faultsOn {
		ccfg.Faults = faults.New(fc)
	}
	c := cluster.New(ccfg)
	if err := c.Deploy(p, nil, workload.InstallOpts{Walker: true, Scale: trace.SpaceScale, Seed: *seed}); err != nil {
		fmt.Fprintln(os.Stderr, "deploy:", err)
		os.Exit(1)
	}
	fmt.Printf("existctl: deployed %s on %d nodes (%d cores each)\n", p.Name, *nodes, *cores)
	if faultsOn {
		fmt.Printf("existctl: fault injection ON (seed=%d loss=%.2f corrupt=%.2f truncate=%.2f put-fail=%.2f stall=%.2f crash-mtbf=%v)\n",
			*faultSeed, *lossProb, *corruptProb, *truncProb, *putFailProb, *stallProb, *crashMTBF)
	}

	req, err := c.Request("existctl-request", cluster.TraceRequestSpec{
		App:     p.Name,
		Purpose: pur,
		Period:  simtime.Duration(period.Nanoseconds()),
		Scale:   trace.SpaceScale,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "request:", err)
		os.Exit(1)
	}
	fmt.Printf("existctl: filed TraceRequest %q (purpose=%s)\n", req.Name, *purpose)
	// Subscribe to the request's watch stream, as operator tooling does.
	c.API.Watch(func(r *cluster.TraceRequest) {
		fmt.Printf("existctl: [watch %v] %s -> %s %s\n", c.Eng.Now(), r.Name, r.Phase, r.Message)
	})
	if *cancelAfter > 0 {
		c.Eng.Schedule(simtime.Time(cancelAfter.Nanoseconds()), func(now simtime.Time) {
			fmt.Printf("existctl: [%v] operator cancel of %s\n", now, req.Name)
			c.Cancel(req)
		})
	}

	c.Run(5 * simtime.Second)

	fmt.Printf("existctl: request phase: %s %s\n", req.Phase, req.Message)
	if req.Planned > 0 && len(req.SessionKeys) < req.Planned {
		fmt.Printf("existctl: partial coverage: %d/%d planned sessions landed (%d lost, %d re-sampled)\n",
			len(req.SessionKeys), req.Planned, req.Lost, req.Resampled)
	}
	fmt.Printf("existctl: %d sessions uploaded to OSS (%.1f KB raw)\n",
		len(req.SessionKeys), float64(c.OSS.Bytes())/1024)
	for _, key := range req.SessionKeys {
		blob, _ := c.OSS.Get(key)
		sess, err := trace.UnmarshalSession(blob)
		if err != nil {
			fmt.Fprintln(os.Stderr, "  ", key, err)
			continue
		}
		fmt.Printf("  %-40s window=%v cores=%d records=%d\n",
			key, sess.Duration(), len(sess.Cores), len(sess.Switches.Records))
	}
	agg := c.ODPS.AggregateApp(p.Name)
	fmt.Printf("existctl: ODPS holds %d rows; %d distinct functions for %s\n", c.ODPS.Len(), len(agg), p.Name)
	fmt.Printf("existctl: RCO management used %.2e cores on average (%.0f MB resident)\n",
		c.ManagementCores(), c.Mgmt.MemMB)
	if fi := ccfg.Faults; fi != nil {
		st := fi.Stats()
		fmt.Printf("existctl: injected faults: %d put errors, %d sessions lost, %d corrupted, %d truncated, %d crashes, %d stalls\n",
			st.PutFailures, st.SessionsLost, st.SessionsCorrupted, st.SessionsTruncated, st.Crashes, st.Stalls)
		fmt.Printf("existctl: control plane absorbed: %d retries, %d re-samples, %d lease expiries\n",
			c.Mgmt.Retries, c.Mgmt.Resamples, c.Mgmt.LeaseExpiries)
	}
	if *cancelAfter > 0 {
		if err := c.Delete(req.Name); err != nil {
			fmt.Fprintln(os.Stderr, "delete:", err)
			os.Exit(1)
		}
		if _, ok := c.API.Get(req.Name); ok {
			fmt.Fprintln(os.Stderr, "delete: request still present after Delete")
			os.Exit(1)
		}
		fmt.Printf("existctl: deleted TraceRequest %q (phase was %s); OSS now holds %d session blobs\n",
			req.Name, req.Phase, len(c.OSS.List("")))
	}
}
