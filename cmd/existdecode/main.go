// Command existdecode is the offline decoder: it reconstructs execution
// from a serialized session (as uploaded to the object store or written by
// existd -dump), consulting the binary repository — here, re-synthesizing
// the workload's binary from its profile name and seed, since synthetic
// binaries are deterministic in both.
//
// Sessions in either wire format decode transparently: the current v2
// block framing is read as a stream, and legacy v1 dumps from older
// builds still work.
//
// Usage:
//
//	existd -app mc -dump /tmp/mc.sess
//	existdecode -app mc -seed 1 -in /tmp/mc.sess
//	existdecode -app mc -seed 1 -in /tmp/mc.sess -stats -jobs 4
package main

import (
	"flag"
	"fmt"
	"os"

	"exist/internal/decode"
	"exist/internal/node"
	"exist/internal/report"
	"exist/internal/trace"
	"exist/internal/workload"
)

func main() {
	var (
		appName = flag.String("app", "", "workload profile the session traced")
		seed    = flag.Uint64("seed", 1, "seed the binary was synthesized with")
		in      = flag.String("in", "", "serialized session file")
		top     = flag.Int("top", 10, "how many hottest functions to print")
		stats   = flag.Bool("stats", false, "print wire-format statistics for the session")
		jobs    = flag.Int("jobs", 1, "worker count for per-core parallel decode")
	)
	flag.Parse()
	if *appName == "" || *in == "" {
		fmt.Fprintln(os.Stderr, "existdecode: -app and -in are required")
		os.Exit(2)
	}
	p, err := workload.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	info, _ := f.Stat()
	sess, err := trace.DecodeSessionFrom(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "unmarshal:", err)
		os.Exit(1)
	}
	fmt.Printf("session %q: workload=%s node=%q window=%v cores=%d records=%d space=%.1fMB\n",
		sess.ID, sess.Workload, sess.Node, sess.Duration(), len(sess.Cores),
		len(sess.Switches.Records), sess.SpaceMB())

	if *stats {
		wireBytes := int64(0)
		if info != nil {
			wireBytes = info.Size()
		}
		v1Bytes := int64(trace.V1Size(sess))
		ratio := 0.0
		if wireBytes > 0 {
			ratio = float64(v1Bytes) / float64(wireBytes)
		}
		fmt.Printf("wire bytes:          %d\n", wireBytes)
		fmt.Printf("v1-equivalent bytes: %d\n", v1Bytes)
		fmt.Printf("compression ratio:   %.2fx\n", ratio)
		for i := range sess.Cores {
			c := &sess.Cores[i]
			fmt.Printf("core %d: %d trace bytes, %d dropped (wrapped=%v stopped=%v)\n",
				c.Core, len(c.Data), c.DroppedBytes, c.Wrapped, c.Stopped)
		}
	}

	prog := node.Program(p, *seed)
	rec := decode.DecodeParallel(sess, prog, *jobs)
	fmt.Print(report.Build(rec, prog, sess, report.Options{TopFuncs: *top}))

	if msg := degradedReport(sess, rec); msg != "" {
		fmt.Fprint(os.Stderr, msg)
		os.Exit(1)
	}
}

// degradedReport returns a non-empty diagnostic when the session carries
// cores but decodes to zero usable ones — a degraded artifact (truncated
// upload, wrong binary seed, fully-dropped buffers). Pipelines get a
// non-zero exit instead of a silently empty profile.
func degradedReport(sess *trace.Session, rec *decode.Result) string {
	if len(sess.Cores) == 0 || rec.Events > 0 {
		return ""
	}
	msg := fmt.Sprintf("existdecode: degraded session: 0 usable cores (%d present, %d decode notes)\n",
		len(sess.Cores), len(rec.Errors))
	for i := range sess.Cores {
		c := &sess.Cores[i]
		msg += fmt.Sprintf("  core %d: %d trace bytes, %d dropped, wrapped=%v stopped=%v\n",
			c.Core, len(c.Data), c.DroppedBytes, c.Wrapped, c.Stopped)
	}
	return msg
}
