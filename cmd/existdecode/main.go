// Command existdecode is the offline decoder: it reconstructs execution
// from a serialized session (as uploaded to the object store or written by
// existd -dump), consulting the binary repository — here, re-synthesizing
// the workload's binary from its profile name and seed, since synthetic
// binaries are deterministic in both.
//
// Usage:
//
//	existd -app mc -dump /tmp/mc.sess
//	existdecode -app mc -seed 1 -in /tmp/mc.sess
package main

import (
	"flag"
	"fmt"
	"os"

	"exist/internal/decode"
	"exist/internal/report"
	"exist/internal/trace"
	"exist/internal/workload"
)

func main() {
	var (
		appName = flag.String("app", "", "workload profile the session traced")
		seed    = flag.Uint64("seed", 1, "seed the binary was synthesized with")
		in      = flag.String("in", "", "serialized session file")
		top     = flag.Int("top", 10, "how many hottest functions to print")
	)
	flag.Parse()
	if *appName == "" || *in == "" {
		fmt.Fprintln(os.Stderr, "existdecode: -app and -in are required")
		os.Exit(2)
	}
	p, err := workload.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sess, err := trace.UnmarshalSession(blob)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unmarshal:", err)
		os.Exit(1)
	}
	fmt.Printf("session %q: workload=%s node=%q window=%v cores=%d records=%d space=%.1fMB\n",
		sess.ID, sess.Workload, sess.Node, sess.Duration(), len(sess.Cores),
		len(sess.Switches.Records), sess.SpaceMB())

	prog := p.Synthesize(*seed)
	rec := decode.Decode(sess, prog)
	fmt.Print(report.Build(rec, prog, sess, report.Options{TopFuncs: *top}))
}
