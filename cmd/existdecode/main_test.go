package main

import (
	"strings"
	"testing"

	"exist/internal/decode"
	"exist/internal/trace"
)

func TestDegradedReport(t *testing.T) {
	sess := &trace.Session{Cores: []trace.CoreTrace{
		{Core: 0, DroppedBytes: 4096, Stopped: true},
		{Core: 1},
	}}
	rec := &decode.Result{Errors: []string{"core 0: truncated packet"}}

	msg := degradedReport(sess, rec)
	if msg == "" {
		t.Fatal("zero decoded events across populated cores must be reported as degraded")
	}
	for _, want := range []string{"0 usable cores", "2 present", "1 decode notes", "core 0", "core 1", "4096 dropped"} {
		if !strings.Contains(msg, want) {
			t.Errorf("degraded report missing %q in:\n%s", want, msg)
		}
	}

	rec.Events = 1
	if msg := degradedReport(sess, rec); msg != "" {
		t.Errorf("session with decoded events reported degraded: %q", msg)
	}
	empty := &trace.Session{}
	rec.Events = 0
	if msg := degradedReport(empty, rec); msg != "" {
		t.Errorf("session with no cores reported degraded: %q", msg)
	}
}
