// Quickstart: trace one application on one simulated node with EXIST and
// decode the result.
//
// The ten-line story: provision a node (machine + workload) from a
// node.Spec, attach the EXIST backend from the tracer registry (the
// controller configures per-core buffers and the CR3 filter up front, a
// sched_switch hook enables each core's tracer exactly once, and a
// high-resolution timer closes the window), then reconstruct the execution
// from the packet streams.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"exist/internal/binary"
	"exist/internal/decode"
	"exist/internal/metrics"
	"exist/internal/node"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/tracer"
	"exist/internal/workload"
)

func main() {
	// A 8-core node running a Memcached-like service, traced on demand
	// for 300 ms after a 100 ms warmup.
	profile, err := workload.ByName("mc")
	if err != nil {
		log.Fatal(err)
	}
	prog := node.Program(profile, 42)
	rt := node.Provision(node.Spec{
		Cores:       8,
		HT:          true,
		Seed:        42,
		Workload:    profile,
		Walker:      true,             // branch-exact execution
		Scale:       trace.SpaceScale, // slow-motion factor (see package trace)
		Prog:        prog,
		Warmup:      100 * simtime.Millisecond,
		Dur:         quick(300 * simtime.Millisecond),
		Drain:       100 * simtime.Millisecond,
		Backend:     "EXIST",
		KeepSession: true,
	})
	m, proc := rt.Machine, rt.Proc

	// Record ground truth so we can score the reconstruction — only
	// possible in simulation, and exactly how the test suite validates
	// the whole pipeline.
	gt := trace.NewGroundTruth(prog, 0, 0)
	m.Listener = func(th *sched.Thread, now simtime.Time, ev binary.BranchEvent) {
		if th.Proc == proc {
			gt.Record(int32(th.TID), now, ev)
		}
	}

	// Warm up and open the session.
	if err := rt.Attach(); err != nil {
		log.Fatal(err)
	}
	sess := rt.Backend.(*tracer.EXIST).CoreSession()
	gt.Start, gt.End = sess.Start, sess.Start+rt.Spec.Dur

	rt.Run()
	r, err := rt.Harvest()
	if err != nil {
		log.Fatal(err)
	}
	result := r.Session

	fmt.Printf("traced %s for %v on %d cores\n", proc.Name, result.Duration(), len(sess.Plan.Cores))
	fmt.Printf("trace volume: %.1f MB (real scale), %d five-tuple records\n",
		result.SpaceMB(), len(result.Switches.Records))
	fmt.Printf("control cost: %d MSR operations for %d context switches\n",
		r.MSROps, m.Stats.Switches)

	rec := decode.Decode(result, prog)
	score := metrics.PathAccuracy(gt.ByThread, rec.ByThread)
	fmt.Printf("reconstruction: %d events, %.1f%% of ground truth recovered, %d spurious\n",
		rec.Events, score.Accuracy*100, score.Spurious)
}

// quick halves simulated durations when EXIST_QUICK is set (CI smoke runs).
func quick(d simtime.Duration) simtime.Duration {
	if os.Getenv("EXIST_QUICK") != "" {
		return d / 2
	}
	return d
}
