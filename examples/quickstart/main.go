// Quickstart: trace one application on one simulated node with EXIST and
// decode the result.
//
// The ten-line story: build a machine, install a workload, open a bounded
// tracing session (the controller configures per-core buffers and the CR3
// filter up front, a sched_switch hook enables each core's tracer exactly
// once, and a high-resolution timer closes the window), then reconstruct
// the execution from the packet streams.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"exist/internal/binary"
	"exist/internal/core"
	"exist/internal/decode"
	"exist/internal/metrics"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
)

func main() {
	// A 8-core node running a Memcached-like service.
	cfg := sched.DefaultConfig()
	cfg.Cores = 8
	cfg.Seed = 42
	m := sched.NewMachine(cfg)

	profile, err := workload.ByName("mc")
	if err != nil {
		log.Fatal(err)
	}
	prog := profile.Synthesize(42)
	proc := profile.Install(m, workload.InstallOpts{
		Walker: true,             // branch-exact execution
		Scale:  trace.SpaceScale, // slow-motion factor (see package trace)
		Prog:   prog,
		Seed:   42,
	})

	// Record ground truth so we can score the reconstruction — only
	// possible in simulation, and exactly how the test suite validates
	// the whole pipeline.
	gt := trace.NewGroundTruth(prog, 0, 0)
	m.Listener = func(th *sched.Thread, now simtime.Time, ev binary.BranchEvent) {
		if th.Proc == proc {
			gt.Record(int32(th.TID), now, ev)
		}
	}

	// Let the service warm up, then trace on demand for 300 ms.
	m.Run(100 * simtime.Millisecond)
	ctrl := core.NewController(m)
	sessCfg := core.DefaultConfig()
	sessCfg.Period = 300 * simtime.Millisecond
	sessCfg.Scale = trace.SpaceScale
	sess, err := ctrl.Trace(proc, sessCfg)
	if err != nil {
		log.Fatal(err)
	}
	gt.Start, gt.End = sess.Start, sess.Start+sessCfg.Period

	m.Run(500 * simtime.Millisecond)
	result, err := sess.Result()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("traced %s for %v on %d cores\n", proc.Name, result.Duration(), len(sess.Plan.Cores))
	fmt.Printf("trace volume: %.1f MB (real scale), %d five-tuple records\n",
		result.SpaceMB(), len(result.Switches.Records))
	fmt.Printf("control cost: %d MSR operations for %d context switches\n",
		sess.Stats.MSROps, m.Stats.Switches)

	rec := decode.Decode(result, prog)
	score := metrics.PathAccuracy(gt.ByThread, rec.ByThread)
	fmt.Printf("reconstruction: %d events, %.1f%% of ground truth recovered, %d spurious\n",
		rec.Events, score.Accuracy*100, score.Spurious)
}
