// Anomaly diagnosis: the paper's §5.4 case study as a runnable walkthrough.
//
// A Recommend-like service misbehaves: response times spike and the thread
// count climbs, but metrics cannot say why. We open an EXIST window on the
// process and read the chronology out of the five-tuple sidecar and the
// decoded traces: one thread performs a synchronous log write that blocks
// on disk for hundreds of milliseconds, and its siblings pile up on the
// logging mutex behind it.
//
//	go run ./examples/anomaly-diagnosis
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"exist/internal/core"
	"exist/internal/decode"
	"exist/internal/kernel"
	"exist/internal/node"
	"exist/internal/report"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
	"exist/internal/xrand"
)

func main() {
	const seed = 7

	// The observed service: Recommend (heavily multi-threaded ML serving),
	// provisioned through the node runtime.
	rec := workload.CaseStudyApps()[4]
	prog := node.Program(rec, seed)
	rt := node.Provision(node.Spec{
		Cores:     8,
		HT:        true,
		Seed:      seed,
		Timeslice: 500 * simtime.Microsecond,
		Workload:  rec,
		Threads:   6,
		Walker:    true,
		Scale:     trace.SpaceScale,
		Prog:      prog,
	})
	m, proc := rt.Machine, rt.Proc

	// The hidden culprit: a logging thread in the same process whose
	// writes are synchronous. Each one can block on disk for a long time.
	logWeights := make([]float64, int(kernel.NumSyscallClasses))
	logWeights[kernel.SysFileWriteSlow] = 1
	logger := m.SpawnThread(proc, sched.NewWalkerExec(
		prog, xrand.New(seed), m.Cfg.Cost, trace.SpaceScale).
		WithPacing(110*simtime.Millisecond, logWeights))

	// Per-thread syscall tallies, the kind of evidence decoded traces plus
	// the sidecar give an on-call engineer.
	futexWaits := map[int]int64{}
	logWrites := map[int]int64{}
	m.SyscallHooks = append(m.SyscallHooks, func(ev sched.SyscallEvent) simtime.Duration {
		if ev.Thread.Proc != proc {
			return 0
		}
		switch ev.Class {
		case kernel.SysFutex:
			futexWaits[ev.Thread.TID]++
		case kernel.SysFileWriteSlow:
			logWrites[ev.Thread.TID]++
		}
		return 0
	})

	fmt.Println("observed: RT spikes and thread-count growth on Recommend — metrics alone cannot explain it")
	fmt.Println("action:   open an EXIST window on the process")

	// This example drives the controller directly (the escape hatch below
	// the registry backends): anomaly windows are opened on demand, not on
	// the runtime's fixed schedule.
	m.Run(100 * simtime.Millisecond)
	ctrl := rt.Controller()
	ccfg := core.DefaultConfig()
	ccfg.Period = quick(800 * simtime.Millisecond)
	ccfg.Scale = trace.SpaceScale
	ccfg.Seed = seed
	sess, err := ctrl.Trace(proc, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	m.Run(sess.Start + ccfg.Period + 10*simtime.Millisecond)
	result, err := sess.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window:   %v, %d five-tuple records, %.1f MB of trace\n",
		result.Duration(), len(result.Switches.Records), result.SpaceMB())

	// Chronological evidence 1: find the longest scheduled-out gap per
	// thread in the sidecar.
	type gap struct {
		tid int32
		dur simtime.Duration
		at  simtime.Time
	}
	records := append([]kernel.SwitchRecord(nil), result.Switches.Records...)
	sort.Slice(records, func(i, j int) bool { return records[i].TS < records[j].TS })
	lastOut := map[int32]simtime.Time{}
	best := map[int32]gap{}
	for _, r := range records {
		if r.Op == kernel.OpOut {
			lastOut[r.TID] = r.TS
			continue
		}
		if out, ok := lastOut[r.TID]; ok {
			if d := r.TS - out; d > best[r.TID].dur {
				best[r.TID] = gap{tid: r.TID, dur: d, at: out}
			}
		}
	}
	// A thread that scheduled out and never came back within the window
	// is the strongest signal: it is still stuck when the window closes.
	for tid, out := range lastOut {
		stillOut := true
		for _, r := range records {
			if r.TID == tid && r.Op == kernel.OpIn && r.TS > out {
				stillOut = false
				break
			}
		}
		if stillOut {
			if d := result.End - out; d > best[tid].dur {
				best[tid] = gap{tid: tid, dur: d, at: out}
			}
		}
	}
	var culprit gap
	for _, g := range best {
		if g.dur > culprit.dur {
			culprit = g
		}
	}
	fmt.Printf("evidence: thread %d left the CPU at %v and stayed blocked for at least %v\n",
		culprit.tid, culprit.at, culprit.dur)
	if culprit.tid == int32(logThreadID(logger)) {
		fmt.Printf("evidence: that is the logging thread — it issued %d synchronous log writes\n",
			logWrites[logThreadID(logger)])
	}

	// Chronological evidence 2: siblings pile up behind the logging mutex
	// while the logger is blocked.
	waiting := 0
	for tid, n := range futexWaits {
		if tid != logThreadID(logger) && n > 0 {
			waiting++
		}
	}
	dec := decode.Decode(result, prog)
	fmt.Printf("evidence: decoded %d control-flow events; %d sibling threads show futex (mutex) waits\n",
		dec.Events, waiting)

	fmt.Println("diagnosis: synchronous logging blocks on disk I/O; co-located threads serialize on the logging mutex")
	fmt.Println("fix:       isolate the log disk for similar applications, or make logging asynchronous")

	fmt.Println()
	fmt.Println("--- full behaviour report (what an on-call engineer receives) ---")
	fmt.Print(report.Build(dec, prog, result, report.Options{TopFuncs: 5}))
}

// logThreadID returns a thread's ID (small helper keeping main readable).
func logThreadID(t *sched.Thread) int { return t.TID }

// quick halves simulated durations when EXIST_QUICK is set (CI smoke runs).
func quick(d simtime.Duration) simtime.Duration {
	if os.Getenv("EXIST_QUICK") != "" {
		return d / 2
	}
	return d
}
