// Provisioning modes: how UMA treats CPU-set vs CPU-share applications.
//
// The same search engine is deployed twice: Search1 pinned to eight
// exclusive cores (CPU-set) and Search2 mapped across the whole machine
// (CPU-share). UMA traces the entire mapped set with equal, maximal
// buffers for the former; for the latter it samples a core subset —
// compulsory "current" cores plus low-utilization candidates — and skews
// the budget toward the cores the process actually uses.
//
// Both deployments run through the same node runtime; only the workload
// profile differs.
//
//	go run ./examples/provisioning-modes
package main

import (
	"fmt"
	"log"
	"os"

	"exist/internal/decode"
	"exist/internal/memalloc"
	"exist/internal/node"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/tracer"
	"exist/internal/workload"
)

func main() {
	for _, name := range []string{"Search1", "Search2"} {
		p, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prog := node.Program(p, 21)
		rt := node.Provision(node.Spec{
			Cores:    16,
			HT:       true,
			Seed:     21,
			Workload: p,
			Walker:   true,
			Scale:    trace.SpaceScale,
			Prog:     prog,
			// Warm up so UMA has utilization signal to read.
			Warmup:      150 * simtime.Millisecond,
			Dur:         quick(300 * simtime.Millisecond),
			Drain:       10 * simtime.Millisecond,
			Backend:     "EXIST",
			KeepSession: true,
		})
		if err := rt.Attach(); err != nil {
			log.Fatal(err)
		}
		sess := rt.Backend.(*tracer.EXIST).CoreSession()
		proc := rt.Proc

		fmt.Printf("%s (%s, %d threads, MCS=%d cores)\n", p.Name, proc.Mode, p.Threads, len(proc.Allowed))
		fmt.Printf("  UMA traced core set: %d cores (ratio %.0f%%)\n",
			len(sess.Plan.Cores), sess.Plan.SampleRatio*100)
		var minB, maxB int64
		for _, cp := range sess.Plan.Cores {
			if minB == 0 || cp.BufBytes < minB {
				minB = cp.BufBytes
			}
			if cp.BufBytes > maxB {
				maxB = cp.BufBytes
			}
		}
		fmt.Printf("  per-core buffers: %.0f-%.0f MB (total %.0f MB of the %d MB budget)\n",
			float64(minB)/(1<<20), float64(maxB)/(1<<20),
			float64(sess.Plan.TotalBytes)/(1<<20), memalloc.DefaultConfig().Budget>>20)

		rt.Run()
		r, err := rt.Harvest()
		if err != nil {
			log.Fatal(err)
		}
		res := r.Session
		rec := decode.Decode(res, prog)
		stopped := 0
		for _, ct := range res.Cores {
			if ct.Stopped {
				stopped++
			}
		}
		fmt.Printf("  window %v: %.1f MB trace, %d events decoded, %d/%d buffers overflowed\n\n",
			res.Duration(), res.SpaceMB(), rec.Events, stopped, len(res.Cores))
	}
	fmt.Println("CPU-set apps get the whole mapped set with maximal buffers; CPU-share apps are sampled —")
	fmt.Println("the coreset sampler keeps accuracy while cutting space (Figure 19).")
}

// quick halves simulated durations when EXIST_QUICK is set (CI smoke runs).
func quick(d simtime.Duration) simtime.Duration {
	if os.Getenv("EXIST_QUICK") != "" {
		return d / 2
	}
	return d
}
