// Cluster orchestration: EXIST's cloud-native control plane end to end.
//
// A ten-node cluster runs a search service. An engineer files a
// TraceRequest CRD; the reconciling controller applies RCO's temporal
// decider (window length from application complexity) and spatial sampler
// (which repetitions to trace), opens node sessions, uploads raw traces to
// the object store, decodes them against the binary repository, and lands
// structured rows in the queryable store. Finally, the per-worker traces
// are merged — the trace augmentation of §3.4.
//
//	go run ./examples/cluster-orchestration
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"exist/internal/cluster"
	"exist/internal/coverage"
	"exist/internal/decode"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/tracer"
	"exist/internal/workload"
)

func main() {
	cfg := cluster.DefaultConfig() // ten nodes, as the paper's evaluation cluster
	cfg.CoresPerNode = 8
	cfg.Seed = 11
	c := cluster.New(cfg) // each node is provisioned through the node runtime
	fmt.Printf("tracer backends registered: %v\n", tracer.Names())

	app, err := workload.ByName("Search1")
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Deploy(app, nil, workload.InstallOpts{Walker: true, Scale: trace.SpaceScale, Seed: 11}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %s on %d nodes\n", app.Name, cfg.Nodes)

	// File the request through the configuration interface. No period is
	// given: the temporal decider derives one from priority, binary size
	// and stability history.
	req, err := c.Request("profile-search", cluster.TraceRequestSpec{
		App:     app.Name,
		Purpose: coverage.PurposeProfiling,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Run(quick(6 * simtime.Second))

	fmt.Printf("request %q: %s\n", req.Name, req.Phase)
	fmt.Printf("spatial sampler traced %d of %d repetitions\n", len(req.SessionKeys), cfg.Nodes)

	// Pull the raw sessions back from the object store, decode, and merge.
	prog := c.Binaries[app.Name]
	var perWorker []*decode.Result
	for _, key := range req.SessionKeys {
		blob, ok := c.OSS.Get(key)
		if !ok {
			log.Fatalf("session %s missing", key)
		}
		sess, err := trace.UnmarshalSession(blob)
		if err != nil {
			log.Fatal(err)
		}
		rec := decode.Decode(sess, prog)
		fmt.Printf("  %-44s window=%v events=%d funcs=%d\n",
			key, sess.Duration(), rec.Events, len(rec.FuncEntries))
		perWorker = append(perWorker, rec)
	}
	merged := coverage.Merge(perWorker)
	fmt.Printf("augmentation: %d workers cover %d distinct functions (marginal per worker: %v)\n",
		merged.Workers, merged.DistinctFuncs, merged.NewFuncsPerWorker)

	// The structured store is what engineers actually query.
	agg := c.ODPS.AggregateApp(app.Name)
	type kv struct {
		name string
		n    float64
	}
	var rows []kv
	for name, n := range agg {
		rows = append(rows, kv{name, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Println("hottest functions across the cluster (from the structured store):")
	for i, r := range rows {
		if i >= 5 {
			break
		}
		fmt.Printf("  %8.0f  %s\n", r.n, r.name)
	}
	fmt.Printf("management cost: %.2e cores, %.0f MB (RCO pod)\n", c.ManagementCores(), c.Mgmt.MemMB)
}

// quick halves simulated durations when EXIST_QUICK is set (CI smoke runs).
func quick(d simtime.Duration) simtime.Duration {
	if os.Getenv("EXIST_QUICK") != "" {
		return d / 2
	}
	return d
}
