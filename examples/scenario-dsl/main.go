// Scenario DSL: compile declarative traffic documents and run them end to
// end — the same pipeline behind `existbench -spec` and the scenario
// experiment.
//
// diurnal.yaml is the annotated reference covering every DSL field: a
// document-defined profile derived from a built-in base, two traffic
// classes under a diurnal rate envelope, a node placement with an
// antagonist, and a cluster phase with fault injection. replay.yaml
// substitutes a recorded "t_ms,client" CSV trace for generated arrivals.
//
//	go run ./examples/scenario-dsl
package main

import (
	"embed"
	"fmt"
	"log"
	"os"

	"exist/internal/experiments"
	"exist/internal/spec"
)

//go:embed diurnal.yaml replay.yaml trace.csv
var docs embed.FS

func main() {
	cfg := experiments.Config{
		Quick: os.Getenv("EXIST_QUICK") != "",
		Seed:  1,
	}
	for _, name := range []string{"diurnal.yaml", "replay.yaml"} {
		data, err := docs.ReadFile(name)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := spec.Parse(name, data)
		if err != nil {
			log.Fatal(err)
		}
		// Replay traces resolve relative to the document — here, the
		// embedded copy next to it.
		if err := doc.ResolveReplay(docs.ReadFile); err != nil {
			log.Fatal(err)
		}
		res, err := experiments.RunSpec(cfg, doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s — %s\n\n", doc.Name, doc.Desc)
		fmt.Print(res.Render())
		fmt.Println()
	}
	fmt.Println("Both documents compiled through the one spec path: profiles,")
	fmt.Println("arrivals, placement, cluster sizing and faults all came from YAML.")
}
